"""Incremental grounding: delta rules over the counting algorithm (§3.1).

DeepDive maintains, for every relation, derivation counts (DRed's delta
relations); on an update it propagates *visibility transitions* (tuples
appearing/disappearing) through the stratified derivation rules and then
re-joins only the changed part of each inference rule's body to produce
the modified variables ∆V and factors ∆F.

Two join algebras compute a rule's binding delta:

* ``delta_strategy="fused"`` (default, columnar engine) — the
  DBSP/DRed-style k-term old/new factorization::

      Δ(A₁ ⋈ … ⋈ A_k) = Σ_i A^new_{<i} ⋈ Δ_i ⋈ A^old_{>i}

  driven by k compiled plans per rule (cached like the full-ground
  ``JoinPlan``s) whose ``>i`` steps probe *old-state table views*
  captured at the update's ``apply_delta`` boundaries — **linear** in
  body arity.
* ``delta_strategy="subset"`` — the counting algorithm's inclusion/
  exclusion expansion over the new state (``old = new − Δ``)::

      Δ(A₁ ⋈ … ⋈ A_k) = Σ_{∅≠S⊆{1..k}} (−1)^{|S|+1} ⋈_{i∈S} Δ_i ⋈_{i∉S} A_i^new

  — 2^c−1 terms for c changed positions; kept as the randomized-
  equivalence slow oracle (and the only strategy of the ``legacy``
  tuple-at-a-time engine).

Tuple signs multiply through the join either way, and the two
summations telescope/expand to the same net signed multiset.  Because
the paper's programs are non-recursive, this specialisation of DRed is
exact — no over-deletion/rederivation pass is needed.

Program changes are handled in the same framework: an added rule's delta
is its full evaluation over the new state; a removed inference rule's
delta is the retraction of all its factors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.datalog.ast import EVIDENCE_SUFFIX
from repro.datalog.program import Program
from repro.db.database import Database
from repro.db.plan import canonicalize_batch
from repro.db.query import evaluate_query
from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import FactorGraph, RuleFactor
from repro.reliability.faults import maybe_fire
from repro.grounding.grounder import (
    FactorRecord,
    Grounder,
    GroundingMultiset,
    GroundingResult,
    RuleDeltaAccumulator,
    VariableCodeResolver,
    apply_rule_binding_batch,
    apply_rule_bindings,
    execute_body_columnar,
    full_body_batch,
    head_var_names,
    signed_head_counts,
)


@dataclass
class UpdateResult:
    """What one incremental update produced.

    ``graph`` is the grounder's post-update graph *facade*: with a bound
    compiled substrate it is the substrate's lazy
    :class:`~repro.graph.factor_graph.CompiledGraphView` (no materialized
    graph is ever built on the update path); unbound grounders mutate
    their mutable graph in place and return it.
    """

    delta: FactorGraphDelta
    graph: FactorGraph
    transitions: dict = field(default_factory=dict)
    #: CompiledPatch when a compiled view is bound to the grounder (the
    #: end-to-end incremental path: ΔV/ΔF flow straight into the CSR
    #: substrate without a recompile or a ``delta.apply`` copy).
    patch: object = None

    @property
    def summary(self) -> str:
        return self.delta.summary()


def _signed_delta_bindings(db: Database, body, transitions: dict):
    """Yield ``(binding, sign)`` for the delta of a body join.

    ``transitions`` maps relation name → {row: ±1}.  Relations must
    already be in their NEW state (see module docstring identity).
    """
    changed_positions = [
        i
        for i, atom in enumerate(body)
        if transitions.get(atom.pred)
    ]
    for size in range(1, len(changed_positions) + 1):
        parity = 1 if size % 2 == 1 else -1
        for subset in itertools.combinations(changed_positions, size):
            sources = {
                i: list(transitions[body[i].pred].items()) for i in subset
            }
            for binding, sign in evaluate_query(db, body, sources=sources):
                yield binding, sign * parity


def _signed_delta_batches(db: Database, body, transitions: dict, batches: dict):
    """Columnar counterpart of :func:`_signed_delta_bindings`.

    Yields ``(BindingBatch, parity)`` per non-empty subset S of changed
    body positions, driving the cached join plan for (body, S) with the
    per-relation delta batches (``batches`` memoizes them across rules
    within one update, so their ephemeral sort indexes are reused).
    """
    changed_positions = [
        i
        for i, atom in enumerate(body)
        if transitions.get(atom.pred)
    ]
    store = db.columnar
    for size in range(1, len(changed_positions) + 1):
        parity = 1 if size % 2 == 1 else -1
        for subset in itertools.combinations(changed_positions, size):
            sources = {}
            for i in subset:
                pred = body[i].pred
                batch = batches.get(pred)
                if batch is None:
                    batch = batches[pred] = store.delta_batch(
                        transitions[pred]
                    )
                sources[i] = batch
            yield canonicalize_batch(
                execute_body_columnar(db, body, sources=sources)
            ), parity


def _fused_delta_batches(
    db: Database,
    body,
    transitions: dict,
    batches: dict,
    executor=None,
    head_vars=(),
):
    """Fused k-term counterpart of :func:`_signed_delta_batches`.

    Yields one ``(BindingBatch, +1)`` per *changed* body position ``i``,
    driving the cached fused plan whose step ``i`` consumes that
    position's signed delta batch (``new_{<i} ⋈ Δ_i ⋈ old_{>i}``) —
    linear in body arity where the subset expansion is exponential.
    Positions whose predicate did not change contribute no term (their
    Δ is empty and old = new), so the surviving terms telescope to the
    exact net delta.  ``batches`` memoizes one signed batch per
    predicate across all k plans of *all* rules in the update.

    With an active ``executor`` each term is executed as ``n_workers``
    hash-partitioned shard runs on the worker pool (partitioned on
    ``head_vars``); batches are canonicalized either way, so the sharded
    and serial paths yield bit-identical terms.
    """
    changed_positions = [
        i
        for i, atom in enumerate(body)
        if transitions.get(atom.pred)
    ]
    if not changed_positions:
        return
    store = db.columnar
    plans = store.delta_plans(tuple(body))
    sharded = executor is not None and executor.active
    for i in changed_positions:
        pred = body[i].pred
        batch = batches.get(pred)
        if batch is None:
            batch = batches[pred] = store.delta_batch(transitions[pred])
        if sharded:
            term = executor.execute_delta_term(db, plans[i], i, batch, head_vars)
        else:
            term = plans[i].execute(store, db, sources={i: batch})
        yield canonicalize_batch(term), 1


class IncrementalGrounder:
    """Owns the current grounding and evolves it under updates.

    Use :meth:`from_scratch` to ground initially, then call
    :meth:`apply_update` per development iteration; each call returns the
    :class:`FactorGraphDelta` (for incremental inference) and the updated
    graph, and advances the grounder's internal state.
    """

    def __init__(
        self,
        program: Program,
        db: Database,
        grounding: GroundingResult,
        engine: str = "columnar",
        delta_strategy: str = "fused",
        n_workers: int = 1,
        executor=None,
        ctx=None,
        command_timeout: float | None = None,
        retry=None,
    ):
        if engine not in ("columnar", "legacy"):
            raise ValueError(f"unknown grounding engine {engine!r}")
        if delta_strategy not in ("fused", "subset"):
            raise ValueError(f"unknown delta strategy {delta_strategy!r}")
        self.engine = engine
        self.n_workers = int(n_workers)
        self._executor = executor
        self._owns_executor = False
        if self.n_workers > 1 or self._executor is not None:
            if engine != "columnar" or delta_strategy != "fused":
                raise ValueError(
                    "sharded incremental grounding (n_workers > 1) requires "
                    "the columnar engine with the fused delta strategy"
                )
        if self._executor is None and self.n_workers > 1:
            from repro.grounding.sharded import ShardedGroundingExecutor

            self._executor = ShardedGroundingExecutor(
                db,
                self.n_workers,
                ctx=ctx,
                command_timeout=command_timeout,
                retry=retry,
            )
            self._owns_executor = True
        #: ``"fused"`` drives the k-term old/new plans (columnar engine
        #: only); ``"subset"`` forces the 2^k−1 inclusion/exclusion
        #: oracle.  The legacy engine is tuple-at-a-time subset
        #: expansion regardless of this setting.
        self.delta_strategy = delta_strategy
        self.program = program
        self.db = db
        self.graph = grounding.graph
        self.variable_of = grounding.variable_of
        self.tuple_of = grounding.tuple_of
        self.records = grounding.factor_records
        # Promote freshly grounded records (plain lists) to counted
        # multisets so retraction deltas fold in O(|Δ|), not O(n) each.
        for record in self.records.values():
            if not isinstance(record.groundings, GroundingMultiset):
                record.groundings = GroundingMultiset(record.groundings)
        self._records_by_var: dict = {}
        for key, record in self.records.items():
            for var in self._record_vars(record):
                self._records_by_var.setdefault(var, set()).add(key)
        #: factor index -> record key, maintained across deltas so
        #: re-indexing after a compaction is one list pass, not an
        #: O(#factors) mapping dict + full registry walk.
        self._factor_keys: list = [None] * self.graph.num_factors
        for key, record in self.records.items():
            if record.factor_index >= 0:
                self._factor_keys[record.factor_index] = key
        self._compiled = None
        self._compact_threshold = 0.25
        #: persistent vectorized (relation, row) → vid maps; kept in sync
        #: as variables appear/disappear so updates never rebuild them.
        self._code_resolver = (
            VariableCodeResolver(db.columnar.interner, self.variable_of)
            if engine == "columnar"
            else None
        )
        #: the most recent :class:`UpdateResult` — stashed *before* the
        #: ``ground.update.finish`` injection point so a failure between
        #: grounding and downstream application can resume without
        #: re-running the (non-idempotent) relation deltas.
        self.last_result: UpdateResult | None = None

    @classmethod
    def from_scratch(
        cls,
        program: Program,
        db: Database,
        engine: str = "columnar",
        delta_strategy: str = "fused",
        n_workers: int = 1,
        ctx=None,
        command_timeout: float | None = None,
        retry=None,
    ) -> "IncrementalGrounder":
        if n_workers > 1 and (engine != "columnar" or delta_strategy != "fused"):
            # Validate before the Grounder spawns a worker pool that the
            # constructor below would then refuse (and leak).
            raise ValueError(
                "sharded incremental grounding (n_workers > 1) requires "
                "the columnar engine with the fused delta strategy"
            )
        grounder = Grounder(
            program,
            db,
            engine=engine,
            n_workers=n_workers,
            ctx=ctx,
            command_timeout=command_timeout,
            retry=retry,
        )
        grounding = grounder.ground()
        # Hand the grounder's worker pool off to the incremental grounder
        # so full ground and every update share one executor session.
        inc = cls(
            program,
            db,
            grounding,
            engine=engine,
            delta_strategy=delta_strategy,
            n_workers=n_workers,
            executor=grounder.executor,
        )
        inc._owns_executor = grounder._owns_executor
        grounder._owns_executor = False
        return inc

    @property
    def executor(self):
        """The sharded executor (``None`` on the serial path)."""
        return self._executor

    def close(self) -> None:
        """Shut down an owned sharded executor's worker pool."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
            self._owns_executor = False

    def bind_compiled(self, compiled, compact_threshold: float = 0.25) -> None:
        """Keep a :class:`CompiledFactorGraph` in sync with this grounder.

        Every subsequent :meth:`apply_update` patches the bound compiled
        view in place (``apply_delta``) instead of leaving callers to
        recompile — ΔV/ΔF flow end-to-end from the delta rules into the
        CSR substrate.  The compiled graph must currently reflect
        ``self.graph``.  The resulting :class:`CompiledPatch` is returned
        on ``UpdateResult.patch`` for warm-started samplers."""
        if compiled.graph is not self.graph and compiled.num_vars != self.graph.num_vars:
            raise ValueError("compiled view does not match the grounder's graph")
        self._compiled = compiled
        self._compact_threshold = compact_threshold

    def compile(self, compact_threshold: float = 0.25):
        """Lower the current graph into a bound compiled substrate.

        One-call convenience for the ground-straight-into-the-substrate
        flow: compiles ``self.graph`` once (O(graph), the unavoidable
        initial lowering), binds it, and returns it.  From then on every
        :meth:`apply_update` patches the substrate in place and
        ``self.graph`` is its lazy view.
        """
        from repro.graph.compiled import CompiledFactorGraph

        compiled = CompiledFactorGraph(self.graph)
        self.bind_compiled(compiled, compact_threshold=compact_threshold)
        return compiled

    @staticmethod
    def _record_vars(record: FactorRecord):
        seen = {record.head_var}
        for grounding in record.groundings:
            for var, _pos in grounding:
                seen.add(var)
        return seen

    # ------------------------------------------------------------------ #
    # The update entry point
    # ------------------------------------------------------------------ #

    def apply_update(
        self,
        inserts: dict | None = None,
        deletes: dict | None = None,
        add_derivation_rules=(),
        add_inference_rules=(),
        remove_inference_rules=(),
    ) -> UpdateResult:
        """Process one development iteration's changes.

        ``inserts``/``deletes`` map base-relation names to lists of rows.
        Rules are :class:`DerivationRule` / :class:`InferenceRule`
        instances (or names, for removal).
        """
        inserts = inserts or {}
        deletes = deletes or {}
        # Fires before any relation is mutated: a failure here leaves the
        # grounder (db, records, graph) exactly as it was.
        maybe_fire("ground.update.start")
        fused = self.engine == "columnar" and self.delta_strategy == "fused"
        old_store = self.db.columnar if fused else None
        executor = self._executor
        if executor is not None and (old_store is None or not executor.active):
            executor = None
        if old_store is not None:
            old_store.begin_update()
        if executor is not None:
            executor.begin_update()
        try:
            return self._apply_update(
                inserts,
                deletes,
                add_derivation_rules,
                add_inference_rules,
                remove_inference_rules,
                old_store,
                executor,
            )
        finally:
            # Old-state views live exactly one update; releasing them
            # unpins their fences (and keeps the store picklable for
            # service checkpoints between updates).
            if executor is not None:
                executor.end_update()
            if old_store is not None:
                old_store.release_views()

    def _apply_update(
        self,
        inserts,
        deletes,
        add_derivation_rules,
        add_inference_rules,
        remove_inference_rules,
        old_store,
        executor=None,
    ) -> UpdateResult:
        # Predicates some fused plan may probe in their old state; views
        # are captured lazily right before each such relation's
        # apply_delta below.  Computed from the rules registered *before*
        # this update: added rules evaluate fully over new state.
        body_preds = (
            self._body_predicates() if old_store is not None else frozenset()
        )

        # ---- 1. Base-relation visibility transitions (computed, then applied).
        transitions: dict = {}
        for name, rows in inserts.items():
            counts = transitions.setdefault(name, {})
            for row in rows:
                row = tuple(row)
                counts[row] = counts.get(row, 0) + 1
        for name, rows in deletes.items():
            counts = transitions.setdefault(name, {})
            for row in rows:
                row = tuple(row)
                counts[row] = counts.get(row, 0) - 1
        base_transitions: dict = {}
        for name, counts in transitions.items():
            relation = self.db.relation(name)
            visible: dict = {}
            for row, change in counts.items():
                old = relation.count(row)
                new = old + change
                if new < 0:
                    raise KeyError(
                        f"update deletes more derivations of {row!r} from "
                        f"{name!r} than exist"
                    )
                if old == 0 and new > 0:
                    visible[row] = 1
                elif old > 0 and new == 0:
                    visible[row] = -1
            if old_store is not None and visible and name in body_preds:
                old_store.capture_old(relation)
                if executor is not None:
                    executor.capture_old(relation)
            relation.apply_delta(counts)
            if visible:
                base_transitions[name] = visible

        # ---- 2. Register new derivation rules.
        new_derivation_names = set()
        for rule in add_derivation_rules:
            self.program.register_derivation_rule(rule)
            new_derivation_names.add(rule.name)

        # ---- 3. Propagate through derivation rules in stratified order.
        all_transitions = dict(base_transitions)
        columnar = self.engine == "columnar"
        #: per-relation delta batches, memoized across rules in this
        #: update; invalidated whenever a relation's transitions change.
        delta_batches: dict = {}
        rules_by_head: dict = {}
        for rule in self.program.stratified_derivation_rules():
            rules_by_head.setdefault(rule.head.pred, []).append(rule)
        for head_name in self._derived_relation_order():
            head_delta: dict = {}
            for rule in rules_by_head.get(head_name, ()):
                is_new = rule.name in new_derivation_names
                changed = any(
                    all_transitions.get(atom.pred) for atom in rule.body
                )
                if not is_new and not changed:
                    continue
                if columnar:
                    if is_new:
                        contributions = [
                            (full_body_batch(self.db, rule, executor), 1)
                        ]
                    elif old_store is not None:
                        contributions = _fused_delta_batches(
                            self.db,
                            rule.body,
                            all_transitions,
                            delta_batches,
                            executor=executor,
                            head_vars=head_var_names(rule),
                        )
                    else:
                        contributions = _signed_delta_batches(
                            self.db, rule.body, all_transitions, delta_batches
                        )
                    for batch, parity in contributions:
                        for row, count in signed_head_counts(
                            self.db, rule, batch
                        ).items():
                            head_delta[row] = (
                                head_delta.get(row, 0) + parity * count
                            )
                    continue
                if is_new:
                    signed = (
                        (b, s)
                        for b, s in evaluate_query(self.db, rule.body)
                    )
                else:
                    signed = _signed_delta_bindings(
                        self.db, rule.body, all_transitions
                    )
                for binding, sign in signed:
                    for expanded in rule.expanded_bindings(binding):
                        head_row = rule.head_tuple(expanded)
                        head_delta[head_row] = head_delta.get(head_row, 0) + sign
            head_delta = {r: c for r, c in head_delta.items() if c != 0}
            if not head_delta:
                continue
            relation = self.db.relation(head_name)
            if old_store is not None and head_name in body_preds:
                # Capture only when some tuple actually transitions
                # visibility — pure count changes leave the visible old
                # state identical to the live table.
                count_of = relation.count
                if any(
                    (count_of(row) == 0)
                    if change > 0
                    else (count_of(row) + change == 0)
                    for row, change in head_delta.items()
                ):
                    old_store.capture_old(relation)
                    if executor is not None:
                        executor.capture_old(relation)
            appeared, disappeared = relation.apply_delta(head_delta)
            visible = {row: 1 for row in appeared}
            visible.update({row: -1 for row in disappeared})
            if visible:
                merged = all_transitions.setdefault(head_name, {})
                for row, sign in visible.items():
                    merged[row] = merged.get(row, 0) + sign
                delta_batches.pop(head_name, None)  # batch now stale

        # ---- 4. Variable relation transitions -> ∆V.  Removed tuples stay
        # resolvable in ``variable_of`` until the factor deltas are joined
        # (their retraction bindings need the ids); they are dropped in
        # step 7.
        delta = FactorGraphDelta()
        removed_vars: set = set()
        new_var_offset: dict = {}
        for name in sorted(self.program.variable_relations):
            for row, sign in sorted(all_transitions.get(name, {}).items()):
                if sign > 0:
                    offset = delta.num_new_vars
                    delta.num_new_vars += 1
                    delta.new_var_names.append((name, row))
                    vid = self.graph.num_vars + offset
                    self.variable_of[(name, row)] = vid
                    self.tuple_of[vid] = (name, row)
                    if self._code_resolver is not None:
                        self._code_resolver.add(name, row, vid)
                    new_var_offset[vid] = offset
                    # A candidate appearing after its labels: pick up
                    # pre-existing evidence rows.
                    value = self._current_evidence_value(name, row)
                    if value is not None:
                        delta.new_var_evidence[offset] = value
                elif sign < 0:
                    removed_vars.add(self.variable_of[(name, row)])

        # ---- 5. Evidence transitions (db is fully in its new state now).
        self._apply_evidence_transitions(delta, all_transitions, new_var_offset)

        # ---- 6. Inference-rule factor deltas.
        removed_record_keys: set = set()
        touched_keys: set = set()
        # 6a. Removed rules retract all their factors.
        removed_rule_names = set()
        for rule_or_name in remove_inference_rules:
            name = getattr(rule_or_name, "name", rule_or_name)
            self.program.remove_inference_rule(name)
            removed_rule_names.add(name)
        for key, record in self.records.items():
            if record.rule_name in removed_rule_names:
                removed_record_keys.add(key)
        # 6b. New rules ground fully; existing rules ground their delta.
        # Groundings that referenced a removed variable are retracted here
        # naturally: the variable's tuple disappeared from its relation, so
        # the delta join emits the matching negative bindings.
        new_rule_names = set()
        for rule in add_inference_rules:
            self.program.register_inference_rule(rule)
            new_rule_names.add(rule.name)
        new_weight_entries: list = []
        weights = _DeltaWeightView(self.graph.weights, new_weight_entries)
        # Persistent across updates; per-relation maps build lazily on
        # the first large batch and are maintained in O(|ΔV|) after.
        resolver = self._code_resolver
        for rule in self.program.inference_rules:
            if rule.name in removed_rule_names:
                continue
            is_new = rule.name in new_rule_names
            changed = any(
                all_transitions.get(atom.pred) for atom in rule.body
            )
            if not is_new and not changed:
                continue
            semantics = self.program.semantics_of(rule)
            # Net the rule's delta across all subset terms before folding:
            # an individual ±(⋈Δ/⋈new) term may retract a grounding that a
            # later term re-inserts (see RuleDeltaAccumulator).
            accumulator = RuleDeltaAccumulator()
            if columnar:
                if is_new:
                    contributions = [
                        (full_body_batch(self.db, rule, executor), 1)
                    ]
                elif old_store is not None:
                    contributions = _fused_delta_batches(
                        self.db,
                        rule.body,
                        all_transitions,
                        delta_batches,
                        executor=executor,
                        head_vars=head_var_names(rule),
                    )
                else:
                    contributions = _signed_delta_batches(
                        self.db, rule.body, all_transitions, delta_batches
                    )
                for batch, parity in contributions:
                    if parity != 1:
                        batch.signs = batch.signs * parity
                    apply_rule_binding_batch(
                        rule,
                        semantics,
                        batch,
                        self.db.columnar.interner,
                        self.program.variable_relations,
                        self.variable_of,
                        weights,
                        self.records,
                        touched_keys=touched_keys,
                        resolver=resolver,
                        accumulator=accumulator,
                    )
            else:
                if is_new:
                    signed = evaluate_query(self.db, rule.body)
                else:
                    signed = _signed_delta_bindings(
                        self.db, rule.body, all_transitions
                    )
                apply_rule_bindings(
                    rule,
                    semantics,
                    signed,
                    self.program.variable_relations,
                    self.variable_of,
                    weights,
                    self.records,
                    touched_keys=touched_keys,
                    accumulator=accumulator,
                )
            accumulator.flush(
                rule.name, semantics, self.records, touched_keys
            )
        delta.new_weight_entries = new_weight_entries
        # 6c. Records whose head variable disappeared are retracted; their
        # ids are dropped from the maps now that joins are done.
        for var in removed_vars:
            for key in list(self._records_by_var.get(var, ())):
                if self.records[key].head_var == var:
                    removed_record_keys.add(key)
            name_row = self.tuple_of.pop(var)
            del self.variable_of[name_row]
            if self._code_resolver is not None:
                self._code_resolver.discard(*name_row)

        # ---- 7. Convert record changes into (∆F): every touched surviving
        # record is rebuilt (old factor removed, new factor appended).
        touched_keys -= removed_record_keys
        for key in removed_record_keys:
            record = self.records.pop(key)
            if record.factor_index >= 0:
                delta.removed_factor_ids.add(record.factor_index)
            for var in self._record_vars(record):
                bucket = self._records_by_var.get(var)
                if bucket:
                    bucket.discard(key)
        appended: list = []
        for key in sorted(touched_keys, key=str):
            record = self.records[key]
            if record.factor_index >= 0:
                delta.removed_factor_ids.add(record.factor_index)
            if not record.groundings:
                del self.records[key]
                for var in self._record_vars(record):
                    bucket = self._records_by_var.get(var)
                    if bucket:
                        bucket.discard(key)
                continue
            delta.new_factors.append(
                RuleFactor(
                    weight_id=record.weight_id,
                    head=record.head_var,
                    groundings=record.groundings.as_tuple(),
                    semantics=record.semantics,
                )
            )
            appended.append(key)
            for var in self._record_vars(record):
                self._records_by_var.setdefault(var, set()).add(key)

        # Tombstone removed variables: clamp them false so any residual
        # reference contributes nothing.
        for var in removed_vars:
            delta.evidence_updates[var] = False

        # ---- 8. Apply and re-index.  The O(graph) invariant walk is
        # skipped: the grounder constructs deltas from resolved variable
        # ids and interned weights, and _reindex re-verifies the factor
        # registry whenever factors were removed.  With a bound compiled
        # substrate the delta lands as an O(|Δ|) patch straight in the
        # CSR arrays — no ``delta.apply`` copy, no materialized factor
        # list; ``self.graph`` becomes the substrate's lazy view.
        # Unbound grounders splice their mutable graph in place.
        patch = None
        if self._compiled is not None:
            patch = self._compiled.apply_delta(
                delta, compact_threshold=self._compact_threshold
            )
            self.graph = self._compiled.graph
        else:
            delta.apply_in_place(self.graph)
        self._reindex(delta, appended)
        result = UpdateResult(
            delta=delta, graph=self.graph, transitions=all_transitions, patch=patch
        )
        self.last_result = result
        maybe_fire("ground.update.finish")
        return result

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _body_predicates(self) -> frozenset:
        """Predicates appearing in any registered rule body — the set of
        relations whose pre-update state a fused delta plan may probe."""
        preds: set = set()
        for rule in self.program.stratified_derivation_rules():
            preds.update(atom.pred for atom in rule.body)
        for rule in self.program.inference_rules:
            preds.update(atom.pred for atom in rule.body)
        return frozenset(preds)

    def _derived_relation_order(self) -> list:
        """Derived relations in dependency order (deduped, stable)."""
        seen = []
        for rule in self.program.stratified_derivation_rules():
            if rule.head.pred not in seen:
                seen.append(rule.head.pred)
        return seen

    def _current_evidence_value(self, name: str, var_row: tuple):
        """The evidence label for a variable tuple under the current db
        state, or ``None``.  Positive evidence wins label conflicts."""
        ev_name = name + EVIDENCE_SUFFIX
        if not self.db.has_relation(ev_name):
            return None
        rows = self.db.relation(ev_name).lookup(
            tuple(range(len(var_row))), var_row
        )
        labels = {bool(row[-1]) for row in rows}
        if not labels:
            return None
        return True in labels

    def _apply_evidence_transitions(
        self, delta: FactorGraphDelta, transitions: dict, new_var_offset: dict
    ) -> None:
        for name in self.program.variable_relations:
            ev_name = name + EVIDENCE_SUFFIX
            changed = transitions.get(ev_name)
            if not changed:
                continue
            affected = {row[:-1] for row in changed}
            for var_row in affected:
                vid = self.variable_of.get((name, var_row))
                if vid is None:
                    continue  # evidence about a non-candidate tuple
                value = self._current_evidence_value(name, var_row)
                if vid in new_var_offset:
                    if value is not None:
                        delta.new_var_evidence[new_var_offset[vid]] = value
                else:
                    current = self.graph.evidence_value(vid)
                    if current != value:
                        delta.evidence_updates[vid] = value

    def _reindex(self, delta: FactorGraphDelta, appended) -> None:
        """Recompute record factor indexes after a delta application.

        With no removals, surviving indexes are untouched and only the
        appended records are assigned — O(|Δ|).  Removals compact the
        factor list: the maintained ``_factor_keys`` table is compacted
        in one list pass and indexes are reassigned from the first
        removed position onward.  Verification is scoped to the touched
        (appended) records — survivors keep positions by construction —
        and resolves through the compiled handle table when a substrate
        is bound (O(1) per record, no factor-list materialization).
        """
        removed = delta.removed_factor_ids
        records = self.records
        if removed:
            first = min(removed)
            keys = self._factor_keys
            keys = keys[:first] + [
                keys[index]
                for index in range(first, len(keys))
                if index not in removed
            ]
            keys.extend(appended)
            self._factor_keys = keys
            for index in range(first, len(keys)):
                record = records.get(keys[index])
                if record is not None:
                    record.factor_index = index
        else:
            base = len(self._factor_keys)
            self._factor_keys.extend(appended)
            for offset, key in enumerate(appended):
                records[key].factor_index = base + offset
        compiled = self._compiled
        num_factors = (
            compiled.num_factors if compiled is not None else self.graph.num_factors
        )
        if len(self._factor_keys) != num_factors:
            raise AssertionError("factor registry out of sync")
        for key in appended:
            if not self._factor_matches(records[key]):
                raise AssertionError("factor registry out of sync")

    def _factor_matches(self, record: FactorRecord) -> bool:
        """Head-check one appended record against the factor of truth."""
        index = record.factor_index
        compiled = self._compiled
        if compiled is None:
            factor = self.graph.factors[index]
            return isinstance(factor, RuleFactor) and factor.head == record.head_var
        kind = int(compiled._fkind[index])
        if kind == 2:
            ri = int(compiled._fh1[index])
            return int(compiled.rule_head[ri]) == record.head_var
        if kind == 3:
            factor = compiled.slow_list[int(compiled._fh1[index])]
            return factor.head == record.head_var
        return False


class _DeltaWeightView:
    """Weight-store facade that records newly interned keys into a delta.

    Existing keys resolve against the base store; new keys get the next
    ids *as if* appended, matching :meth:`FactorGraphDelta.apply`.
    """

    def __init__(self, base, new_entries: list) -> None:
        self._base = base
        self._new_entries = new_entries
        self._new_ids: dict = {}

    def intern(self, key, initial: float = 0.0, fixed: bool = False) -> int:
        existing = self._base.id_for(key)
        if existing is not None:
            return existing
        if key in self._new_ids:
            return self._new_ids[key]
        wid = len(self._base) + len(self._new_entries)
        self._new_ids[key] = wid
        self._new_entries.append((key, initial, fixed))
        return wid
