"""Sharded grounding: hash-partitioned plan execution on the worker pool.

Grounding was the last single-process phase of the pipeline (ROADMAP
item 3): inference, learning, updates, and serving already scale across
the PR 2 :class:`~repro.inference.parallel.GibbsWorkerPool`.  This
module scatters both the full-ground joins and the PR 8 fused k-term
delta plans across that pool:

* Each worker process holds a :class:`GroundingWorkerSession` — columnar
  *mirrors* of every relation a plan touches (code matrices shipped once,
  then maintained by signed code deltas), materialized old-state
  snapshots for the fused ``old_{>i}`` probes, pinned pickled
  :class:`~repro.db.plan.JoinPlan` objects, and pinned signed delta
  batches.
* The controller-side :class:`ShardedGroundingExecutor` dispatches one
  *partition-restricted* execution per worker: worker ``w`` runs the
  plan with ``partition=(positions, n_workers, w)``, which keeps exactly
  the first-step rows whose :func:`~repro.db.columnar.shard_assignments`
  hash over the rule's **head-variable** positions equals ``w``.  The
  hash is a pure function of the interned codes, so the shard outputs
  form an exact disjoint cover of the serial batch for any worker count.

**Determinism contract.**  Shard results are merged in worker-index
order and every fold site canonicalizes its batch
(:func:`~repro.db.plan.canonicalize_batch`) before touching factor
records, so factor ids, weight interning order, and new variable ids
are a pure function of the data — ``n_workers=4`` is bit-identical to
``n_workers=1`` (which takes the serial code path exactly).  The
controller replays the same mirror syncs the serial
``JoinPlan.resolve_tables`` performs, in the same step order, so the
constant interner evolves identically in both modes.

**Supervision.**  Every fan-out collects per worker under a
:class:`~repro.reliability.retry.RetryPolicy`: a crashed worker is
respawned (:meth:`GibbsWorkerPool.respawn_worker`) and its whole session
re-shipped from the controller's shadow state, then the in-flight
command is re-sent — all session commands are idempotent (loads
overwrite; deltas apply ensure-visible/ensure-invisible semantics).
When retries exhaust, the executor *degrades to serial* permanently:
the pool is shut down, ``degradations`` is counted, and the caller
falls back to the serial plan execution — bit-identical output either
way, because the controller's interner state never depended on the
workers.
"""

from __future__ import annotations

import numpy as np

from repro.db.columnar import (
    ColumnarBatch,
    _TableIndex,
    pack_row,
    pack_rows,
    shard_assignments,
)
from repro.db.plan import BindingBatch, head_partition_positions
from repro.reliability.errors import WorkerCrashError
from repro.reliability.retry import RetryPolicy

__all__ = ["GroundingWorkerSession", "ShardedGroundingExecutor"]


class _DegradedToSerial(Exception):
    """Internal: the pool is gone; the caller must re-execute serially."""


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _MirrorTable:
    """A worker's columnar mirror of one relation: shipped code rows.

    The plan-step table protocol (``probe`` / ``codes_at`` / ``signs_of``
    / ``partition_of``) over a growable code matrix with an alive mask —
    the :class:`~repro.db.columnar.ColumnarTable` pattern minus the
    interner (codes arrive pre-interned from the controller) and minus
    compaction (worker mirrors live one grounder session; slots are
    append-only, so per-shard indexes and partition caches never
    rebuild).  Deltas apply ensure-visible / ensure-invisible semantics,
    which makes re-applying a delta after a crash-restore a no-op.
    """

    def __init__(self, codes: np.ndarray, stats: dict) -> None:
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 2:
            codes = codes.reshape(0, 0)
        self.arity = codes.shape[1]
        self._codes = codes.copy()
        self._n_slots = len(codes)
        self._n_alive = self._n_slots
        self._alive = np.ones(self._n_slots, dtype=bool)
        self._slot_of = dict(
            zip(pack_rows(codes).tolist(), range(self._n_slots))
        )
        self._indexes: dict = {}
        self._partitions: dict = {}
        self._alive_slots_cache: np.ndarray | None = None
        self._stats = stats

    @property
    def num_rows(self) -> int:
        return self._n_alive

    def _append_slot(self, row_codes: np.ndarray, key) -> int:
        slot = self._n_slots
        if slot == len(self._codes):
            cap = max(16, 2 * len(self._codes))
            grown = np.empty((cap, self.arity), dtype=np.int32)
            grown[:slot] = self._codes[:slot]
            self._codes = grown
            grown_alive = np.zeros(cap, dtype=bool)
            grown_alive[:slot] = self._alive[:slot]
            self._alive = grown_alive
        self._codes[slot] = row_codes
        self._n_slots += 1
        self._slot_of[key] = slot
        for positions, index in self._indexes.items():
            index.append(pack_row(self._codes[slot, positions]), slot)
        return slot

    def apply_delta(self, codes: np.ndarray, signs: np.ndarray) -> None:
        """Apply signed code rows in order (idempotent per final state)."""
        codes = np.asarray(codes, dtype=np.int32)
        keys = pack_rows(codes).tolist()
        for i, (key, sign) in enumerate(zip(keys, signs)):
            slot = self._slot_of.get(key)
            if sign > 0:
                if slot is None:
                    slot = self._append_slot(codes[i], key)
                    self._alive[slot] = True
                    self._n_alive += 1
                elif not self._alive[slot]:
                    self._alive[slot] = True
                    self._n_alive += 1
            elif slot is not None and self._alive[slot]:
                self._alive[slot] = False
                self._n_alive -= 1
        self._alive_slots_cache = None

    # ---- plan-step table protocol ------------------------------------ #

    def alive_slots(self) -> np.ndarray:
        cached = self._alive_slots_cache
        if cached is None:
            cached = np.flatnonzero(self._alive[: self._n_slots])
            self._alive_slots_cache = cached
        return cached

    def visible_codes(self) -> np.ndarray:
        return self._codes[self.alive_slots()]

    def codes_at(self, slots: np.ndarray, position: int) -> np.ndarray:
        return self._codes[slots, position]

    def signs_of(self, slots: np.ndarray) -> np.ndarray:
        return np.ones(len(slots), dtype=np.int64)

    def partition_of(self, positions: tuple, n_shards: int) -> np.ndarray:
        key = (tuple(positions), int(n_shards))
        part = self._partitions.get(key)
        n = self._n_slots
        if part is None:
            self._stats["partition_builds"] += 1
            cols = [self._codes[:n, p] for p in key[0]]
            part = shard_assignments(cols, n_shards, length=n)
            self._partitions[key] = part
        elif len(part) < n:
            lo = len(part)
            cols = [self._codes[lo:n, p] for p in key[0]]
            part = np.concatenate(
                [part, shard_assignments(cols, n_shards, length=n - lo)]
            )
            self._partitions[key] = part
        return part

    def _index_keys(self, positions: tuple) -> np.ndarray:
        return pack_rows(self._codes[: self._n_slots][:, positions])

    def _ensure_index(self, positions: tuple) -> _TableIndex:
        index = self._indexes.get(positions)
        if index is None:
            index = _TableIndex(self._index_keys(positions))
            self._indexes[positions] = index
        return index

    def probe(self, positions: tuple, key_rows: np.ndarray):
        self._stats["shard_probes"] += 1
        m = len(key_rows)
        if not positions:
            alive = self.alive_slots()
            probe_idx = np.repeat(np.arange(m, dtype=np.int64), len(alive))
            return probe_idx, np.tile(alive, m)
        index = self._ensure_index(positions)
        if index.extra_size and (
            index.needs_merge(probe_size=m) or index.needs_merge()
        ):
            index.rebuild(self._index_keys(positions))
        probe_idx, slots = index.probe(pack_rows(key_rows))
        if self._n_alive == self._n_slots:
            return probe_idx, slots
        keep = self._alive[slots]
        return probe_idx[keep], slots[keep]


class _ConstInterner:
    """Worker stand-in for the controller interner: a shipped
    ``{constant: code}`` map probed by the plan's constant steps (codes
    never allocated worker-side — unknown constants stay ``-1``, which
    the plan turns into the same empty batch the serial path returns)."""

    def __init__(self) -> None:
        self.codes: dict = {}

    def probe(self, value) -> int:
        return self.codes.get(value, -1)


class _WorkerDB:
    """Relation handles are just names worker-side."""

    @staticmethod
    def relation(name: str) -> str:
        return name


class _WorkerStore:
    """The ``(store, db)`` surface :meth:`JoinPlan.execute` needs."""

    def __init__(self, session: "GroundingWorkerSession") -> None:
        self._session = session
        self.interner = _ConstInterner()

    def table(self, name: str) -> _MirrorTable:
        return self._session.mirrors[name]

    def old_view(self, name: str):
        return self._session.old_views.get(name)


class GroundingWorkerSession:
    """One worker process's sharded-grounding state + command dispatch.

    Commands arrive via ``_Worker.ground(op=...)``; every op is
    idempotent (see module docstring), so the controller's crash-restore
    can re-ship the session and re-send the in-flight command blindly.
    """

    def __init__(self) -> None:
        self.mirrors: dict = {}
        self.old_views: dict = {}
        self.plans: dict = {}
        self.batches: dict = {}
        self.stats = {"shard_probes": 0, "partition_builds": 0}
        self.store = _WorkerStore(self)
        self.db = _WorkerDB()

    def dispatch(self, op: str, **kwargs):
        return getattr(self, "op_" + op)(**kwargs)

    # ---- mirror maintenance ------------------------------------------ #

    def op_load_table(self, name: str, codes) -> None:
        self.mirrors[name] = _MirrorTable(codes, self.stats)

    def op_delta(self, name: str, codes, signs) -> None:
        self.mirrors[name].apply_delta(codes, signs)

    def op_capture_old(self, name: str) -> None:
        mirror = self.mirrors[name]
        codes = mirror.visible_codes()
        self.old_views[name] = ColumnarBatch(
            codes, np.ones(len(codes), dtype=np.int64)
        )

    def op_load_old(self, name: str, codes) -> None:
        codes = np.asarray(codes, dtype=np.int32)
        self.old_views[name] = ColumnarBatch(
            codes, np.ones(len(codes), dtype=np.int64)
        )

    def op_release_update(self) -> None:
        self.old_views = {}
        self.batches = {}

    # ---- plan / batch pins ------------------------------------------- #

    def op_add_plan(self, plan_id: int, plan) -> None:
        self.plans[plan_id] = plan

    def op_add_batch(self, batch_id: int, codes, signs) -> None:
        self.batches[batch_id] = ColumnarBatch(
            np.asarray(codes, dtype=np.int32),
            np.asarray(signs, dtype=np.int64),
        )

    # ---- shard execution --------------------------------------------- #

    def op_execute(
        self, plan_id: int, sources, consts, positions, n_shards, shard
    ):
        plan = self.plans[plan_id]
        resolved = None
        if sources:
            resolved = {i: self.batches[b] for i, b in sources.items()}
        self.store.interner.codes = consts
        batch = plan.execute(
            self.store,
            self.db,
            sources=resolved,
            partition=(tuple(positions), int(n_shards), int(shard)),
        )
        stats, self.stats = self.stats, {k: 0 for k in self.stats}
        return batch.cols, batch.signs, stats


# --------------------------------------------------------------------- #
# Controller side
# --------------------------------------------------------------------- #


class _ShadowTable:
    """Controller-side record of what a relation's worker mirrors hold.

    Pure code-level bookkeeping (never touches the interner), updated
    only after a ship succeeds — so a crash-restore can rebuild any
    worker's mirror exactly, even while other relations have pending
    unflushed transition logs.
    """

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.rows: dict = {}  # packed key -> int32 code row

    def load(self, codes: np.ndarray) -> None:
        codes = np.asarray(codes, dtype=np.int32)
        self.rows = dict(zip(pack_rows(codes).tolist(), list(codes)))

    def apply_delta(self, codes: np.ndarray, signs) -> None:
        codes = np.asarray(codes, dtype=np.int32)
        keys = pack_rows(codes).tolist()
        for i, (key, sign) in enumerate(zip(keys, signs)):
            if sign > 0:
                self.rows[key] = codes[i]
            else:
                self.rows.pop(key, None)

    def matrix(self) -> np.ndarray:
        if not self.rows:
            return np.empty((0, self.arity), dtype=np.int32)
        return np.stack(list(self.rows.values())).astype(np.int32, copy=False)


class ShardedGroundingExecutor:
    """Controller of a graphless worker pool executing plan shards.

    One executor serves both grounders: :class:`~repro.grounding.
    grounder.Grounder` routes every full body join through
    :meth:`execute_full`, and :class:`~repro.grounding.incremental.
    IncrementalGrounder` routes every fused delta term through
    :meth:`execute_delta_term` (bracketed by :meth:`begin_update` /
    :meth:`end_update` and fed old-state captures via
    :meth:`capture_old`).  ``close()`` shuts the pool down; after a
    degradation (see module docstring) the executor reports
    ``active == False`` and callers take the serial path.
    """

    def __init__(
        self,
        db,
        n_workers: int,
        ctx=None,
        command_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if n_workers < 2:
            raise ValueError(
                f"sharded grounding needs n_workers >= 2, got {n_workers}"
            )
        from repro.inference.parallel import GibbsWorkerPool

        self.db = db
        self.store = db.columnar
        self.n_workers = int(n_workers)
        self.retry = retry if retry is not None else RetryPolicy()
        self.degraded = False
        self._active = True
        #: relation name -> {"log": mirror log, "shadow": _ShadowTable,
        #: "old": captured old-state matrix or None} in ship order.
        self._relations: dict = {}
        self._plan_pins: dict = {}   # id(plan) -> (plan_id, plan)
        self._batch_pins: dict = {}  # id(batch) -> (batch_id, codes, signs, batch)
        self._next_plan_id = 0
        self._next_batch_id = 0
        self.pool = GibbsWorkerPool(
            None, self.n_workers, ctx=ctx, command_timeout=command_timeout
        )
        self.pool.session_restorer = self._restore_worker

    @property
    def active(self) -> bool:
        return self._active

    def close(self) -> None:
        self._active = False
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.close()
        # The attached transition logs become orphans; Relation._notify
        # collapses oversized orphan logs, so nothing leaks unbounded.
        self._relations = {}
        self._plan_pins = {}
        self._batch_pins = {}

    # ---- supervised fan-out ------------------------------------------ #

    def _fan_out(self, per_worker_kwargs: list) -> list:
        pool = self.pool
        for w, kw in enumerate(per_worker_kwargs):
            try:
                pool.send(w, "ground", **kw)
            except WorkerCrashError:
                # recv() below sees the dead worker immediately; the
                # retry path respawns it and re-sends this command.
                pass
        return [
            self._collect(w, kw) for w, kw in enumerate(per_worker_kwargs)
        ]

    def _collect(self, worker: int, kwargs: dict):
        pool = self.pool

        def attempt(n):
            if n > 1:
                pool.send(worker, "ground", **kwargs)
            return pool.recv(worker)

        def on_retry(_n, _exc):
            pool.respawn_worker(worker)

        return self.retry.call(
            attempt, retryable=(WorkerCrashError,), on_retry=on_retry
        )

    def _broadcast(self, op: str, **kwargs) -> list:
        return self._fan_out(
            [dict(op=op, **kwargs) for _ in range(self.n_workers)]
        )

    def _degrade(self, exc: BaseException) -> None:
        """Permanent fallback: count it, stop the pool, go serial."""
        self.degraded = True
        self._active = False
        self.store.stats["degradations"] += 1
        pool, self.pool = self.pool, None
        if pool is not None:
            try:
                pool.close()
            except Exception:
                pass
        raise _DegradedToSerial from exc

    def _restore_worker(self, worker: int) -> None:
        """Re-ship the whole session to one respawned worker (registered
        as the pool's ``session_restorer``)."""
        pool = self.pool

        def ship(op, **kw):
            pool.send(worker, "ground", op=op, **kw)
            pool.recv(worker)

        for name, entry in self._relations.items():
            ship("load_table", name=name, codes=entry["shadow"].matrix())
            if entry["old"] is not None:
                ship("load_old", name=name, codes=entry["old"])
        for plan_id, plan in self._plan_pins.values():
            ship("add_plan", plan_id=plan_id, plan=plan)
        for batch_id, codes, signs, _batch in self._batch_pins.values():
            ship("add_batch", batch_id=batch_id, codes=codes, signs=signs)

    # ---- session state shipping -------------------------------------- #

    def _sync_relation(self, relation) -> None:
        """First touch ships the full mirror; later touches flush the
        pending transition log as a signed code delta.  The log drains —
        and the shadow advances — only after the broadcast collected, so
        a crash mid-ship retries from consistent state."""
        name = relation.name
        entry = self._relations.get(name)
        store = self.store
        if entry is None:
            log: list = []
            relation.attach_mirror(log)
            codes = store.table(relation).visible_codes()
            entry = {
                "log": log,
                "shadow": _ShadowTable(relation.arity),
                "old": None,
            }
            self._relations[name] = entry
            self._broadcast("load_table", name=name, codes=codes)
            entry["shadow"].load(codes)
            return
        log = entry["log"]
        if not log:
            return
        entries = list(log)
        if any(row is None for row, _sign in entries):
            # clear() sentinel: reload from scratch (covers everything
            # drained, whatever preceded the sentinel).
            codes = store.table(relation).visible_codes()
            self._broadcast("load_table", name=name, codes=codes)
            entry["shadow"].load(codes)
        else:
            rows = [row for row, _sign in entries]
            signs = np.asarray(
                [sign for _row, sign in entries], dtype=np.int64
            )
            # Every logged row is already interned: insertions were
            # interned by the controller mirror's own sync (replayed in
            # plan-step order before this flush), deletions were interned
            # when they first became visible.
            codes = store.interner.encode_rows(rows)
            self._broadcast("delta", name=name, codes=codes, signs=signs)
            entry["shadow"].apply_delta(codes, signs)
        del log[: len(entries)]

    def _ensure_plan(self, plan) -> int:
        pin = self._plan_pins.get(id(plan))
        if pin is None:
            plan_id = self._next_plan_id
            self._next_plan_id += 1
            self._plan_pins[id(plan)] = (plan_id, plan)
            self._broadcast("add_plan", plan_id=plan_id, plan=plan)
            return plan_id
        return pin[0]

    def _ensure_batch(self, batch: ColumnarBatch) -> int:
        pin = self._batch_pins.get(id(batch))
        if pin is None:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            codes, signs = batch.codes, batch.signs
            self._batch_pins[id(batch)] = (batch_id, codes, signs, batch)
            self._broadcast(
                "add_batch", batch_id=batch_id, codes=codes, signs=signs
            )
            return batch_id
        return pin[0]

    # ---- update-epoch bracketing (incremental grounder) -------------- #

    def begin_update(self) -> None:
        if not self._active:
            return
        if self._batch_pins or any(
            entry["old"] is not None for entry in self._relations.values()
        ):
            self.end_update()  # defensive: a failed update left state

    def end_update(self) -> None:
        for entry in self._relations.values():
            entry["old"] = None
        self._batch_pins = {}
        if not self._active:
            return
        try:
            self._broadcast("release_update")
        except (WorkerCrashError, RuntimeError) as exc:
            try:
                self._degrade(exc)
            except _DegradedToSerial:
                pass

    def capture_old(self, relation) -> None:
        """Mirror of :meth:`ColumnarStore.capture_old` for the worker
        mirrors — call right after it, before the ``apply_delta``."""
        if not self._active:
            return
        try:
            self._sync_relation(relation)
            entry = self._relations[relation.name]
            if entry["old"] is None:
                entry["old"] = entry["shadow"].matrix()
                self._broadcast("capture_old", name=relation.name)
        except _DegradedToSerial:
            pass
        except (WorkerCrashError, RuntimeError) as exc:
            try:
                self._degrade(exc)
            except _DegradedToSerial:
                pass

    # ---- execution entry points -------------------------------------- #

    def execute_full(self, db, body, head_vars) -> BindingBatch:
        """Sharded equivalent of the serial full body join."""
        plan = self.store.plan(body)
        if not self._active:
            return plan.execute(self.store, db)
        try:
            return self._execute(plan, db, None, head_vars)
        except _DegradedToSerial:
            return plan.execute(self.store, db)

    def execute_delta_term(self, db, plan, i, batch, head_vars) -> BindingBatch:
        """Sharded execution of one fused delta term (plan ``i`` of the
        body, fed by that position's signed delta batch)."""
        if not self._active:
            return plan.execute(self.store, db, sources={i: batch})
        try:
            return self._execute(plan, db, {i: batch}, head_vars)
        except _DegradedToSerial:
            return plan.execute(self.store, db, sources={i: batch})

    def _execute(self, plan, db, sources, head_vars) -> BindingBatch:
        store = self.store
        try:
            # Serial-equivalent mirror syncs in plan-step order (exactly
            # what JoinPlan.resolve_tables performs), then the worker
            # mirror flushes — by which point every logged row is
            # interned, so the interner state matches the serial path's.
            for step in plan.steps:
                if step.is_source:
                    continue
                relation = db.relation(plan.atoms[step.atom_index].pred)
                store.table(relation)
                self._sync_relation(relation)
            consts = {}
            for step in plan.steps:
                for value in step.const_values:
                    consts[value] = store.interner.probe(value)
            src_ids = None
            if sources:
                src_ids = {
                    i: self._ensure_batch(batch)
                    for i, batch in sources.items()
                }
            positions = head_partition_positions(plan, head_vars)
            plan_id = self._ensure_plan(plan)
            per_worker = [
                dict(
                    op="execute",
                    plan_id=plan_id,
                    sources=src_ids,
                    consts=consts,
                    positions=positions,
                    n_shards=self.n_workers,
                    shard=w,
                )
                for w in range(self.n_workers)
            ]
            results = self._fan_out(per_worker)
        except (WorkerCrashError, RuntimeError) as exc:
            self._degrade(exc)
        return self._merge(results)

    def _merge(self, results: list) -> BindingBatch:
        """Concatenate shard outputs in worker-index order.

        The order here is *not* load-bearing for determinism — every
        fold site canonicalizes the batch — but merging in a fixed order
        keeps the pre-canonical batch reproducible too (the shuffled-
        completion regression test monkeypatches this seam).
        """
        stats = self.store.stats
        for _cols, _signs, wstats in results:
            for key, value in wstats.items():
                stats[key] += value
        stats["shard_batches_merged"] += len(results)
        names = list(results[0][0])
        cols = {
            name: np.concatenate([r[0][name] for r in results])
            for name in names
        }
        signs = np.concatenate([r[1] for r in results])
        return BindingBatch(cols=cols, signs=signs)
