"""Factor-graph weight learning by SGD with persistent Gibbs chains.

This is DeepDive's standard learner: inference is the inner subroutine of
learning (§1), run as two persistent chains — one conditioned on the
evidence, one free — whose sample statistics estimate the gradient
(contrastive-divergence style).  *Warmstart* (App. B.3) simply means the
weight store is left at its previous values instead of being zeroed.

The learner is **persistent and patchable**: :meth:`SGDLearner.apply_patch`
carries both chains, the compiled gradient aggregation and the evidence
scorer across a :meth:`CompiledFactorGraph.apply_delta` patch, so
re-learning after a development-loop update (the F2+S2 iterations of
Fig. 16) pays O(|Δ|) setup instead of recompiling the graph and
restarting the chains.  Gradient statistics run on the compiled flat
arrays (:meth:`CompiledFactorGraph.weight_statistics`), batched over the
whole ``(S, n)`` world matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.compiled import CompiledFactorGraph, GibbsCache
from repro.graph.factor_graph import FactorGraph
from repro.inference.gibbs import GibbsSampler, _sigmoid
from repro.learning.gradient import EvidenceScorer, weight_gradient
from repro.reliability.errors import WorkerCrashError
from repro.reliability.faults import maybe_fire
from repro.util.rng import as_generator


@dataclass
class LearningHistory:
    """Per-epoch trace of a learning run."""

    losses: list = field(default_factory=list)
    times: list = field(default_factory=list)
    grad_norms: list = field(default_factory=list)

    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class SGDLearner:
    """Learn the non-fixed weights of ``graph`` from its evidence.

    Parameters
    ----------
    graph:
        Factor graph whose evidence variables carry the training labels.
        Weights are updated **in place** in ``graph.weights``.
    step_size:
        SGD step size (constant schedule; the paper grid-searches this).
    sweeps_per_epoch:
        Gibbs sweeps advanced on each persistent chain per epoch.
    samples_per_epoch:
        Worlds per chain used for the gradient estimate.
    warmstart:
        When False, all learnable weights are zeroed before training
        (the "SGD-Warmstart" baseline of Fig. 16); when True the current
        values are kept.
    n_workers:
        With ``n_workers >= 2`` the conditioned and free persistent
        chains live in two worker processes (sharing the compiled arrays
        through shared memory) and advance **concurrently** each epoch;
        weight updates are pushed to the workers between epochs.  ``1``
        (default) keeps both chains in-process.  Call :meth:`close` (or
        use the learner as a context manager) when workers were used.
    compiled:
        Optional shared (possibly incrementally patched) compilation —
        re-learning after a delta shares the engine's patched substrate
        instead of recompiling.
    """

    def __init__(
        self,
        graph: FactorGraph,
        step_size: float = 0.5,
        sweeps_per_epoch: int = 2,
        samples_per_epoch: int = 5,
        l2: float = 1e-4,
        warmstart: bool = True,
        seed=None,
        n_workers: int = 1,
        compiled: CompiledFactorGraph | None = None,
    ) -> None:
        self.graph = graph
        self.step_size = step_size
        self.sweeps_per_epoch = sweeps_per_epoch
        self.samples_per_epoch = samples_per_epoch
        self.l2 = l2
        self.rng = as_generator(seed)
        if not warmstart:
            for wid in self.graph.weights.learnable_ids():
                self.graph.weights.set_value(wid, 0.0)

        # Free graph: same structure and *shared* weights, no clamping.
        self.free_graph = graph.copy(share_weights=True)
        for var in list(self.free_graph.evidence):
            self.free_graph.clear_evidence(var)

        # Both chains share one flat-array compilation (identical factor
        # structure; each sampler derives its own scan plan from its
        # graph's evidence).  Weight updates land via the per-sweep
        # weights-vector refresh, so no recompilation is ever needed.  An
        # externally supplied (possibly incrementally patched) compilation
        # is reused as-is — re-learning after a delta shares the engine's
        # patched substrate instead of recompiling.
        self._compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        self._scorer = None
        self._pool = None
        self.degradations = 0
        if n_workers >= 2:
            from repro.inference.parallel import GibbsWorkerPool
            from repro.util.rng import spawn

            self._pool = GibbsWorkerPool(self._compiled, 2)
            cond_rng, free_rng = spawn(self.rng, 2)
            # Worker 0: conditioned chain (export's default evidence);
            # worker 1: free chain (no clamping).
            self._pool.call(0, "chain_init", chain_id=0, rng=cond_rng)
            self._pool.call(
                1, "chain_init", chain_id=0, rng=free_rng, evidence={}
            )
            self._conditioned = None
            self._free = None
        else:
            self._conditioned = GibbsSampler(
                graph, seed=self.rng, compiled=self._compiled
            )
            self._free = GibbsSampler(
                self.free_graph, seed=self.rng, compiled=self._compiled
            )

    # ------------------------------------------------------------------ #

    def apply_patch(self, patch) -> None:
        """Warm-start the learner across a compiled-graph patch.

        Both persistent chains keep their assignments (new variables
        start from their bias-only conditional; re-clamped evidence flows
        through the caches), the weight store's growth flows through the
        capacity-slack weight region of the shared export, and the
        compiled gradient aggregation is already patched (it lives in the
        same flat arrays).  The free chain keeps its evidence-free twin
        of the updated structure.

        ``patch`` is the :class:`~repro.graph.compiled.CompiledPatch`
        returned by ``apply_delta`` on this learner's compilation — the
        caller (typically an engine) owns applying the delta.
        """
        compiled = self._compiled
        self.graph = compiled.graph
        self.free_graph = self.graph.copy(share_weights=True)
        for var in list(self.free_graph.evidence):
            self.free_graph.clear_evidence(var)
        self._scorer = None
        if self._pool is not None:
            in_place = (
                not patch.compacted and self._pool.export.apply_patch(compiled)
            )
            if in_place:
                # Segment grown in place: workers replay the ops and
                # warm-patch their chains; the processes never respawn.
                self._pool.graph_patch(compiled, patch)
            else:
                # Capacity overflow or compaction: fresh segment, same
                # worker processes, chain states carried over.
                if compiled.has_patches:
                    compiled.compact()
                    patch.compacted = True
                self._pool.reexport(compiled, ops=patch.ops)
        else:
            self._conditioned.apply_patch(patch)
            self._free.apply_patch(patch, graph=self.free_graph)

    # ------------------------------------------------------------------ #

    def epoch(self) -> float:
        """One SGD epoch; returns the gradient norm.

        A chain worker crashing mid-epoch degrades the learner to serial
        chains (``degradations`` counter) and reruns the epoch there —
        learning continues instead of losing the fit."""
        maybe_fire("learn.epoch")
        if self._pool is not None:
            try:
                cond_worlds, free_worlds = self._epoch_worlds_parallel()
            except WorkerCrashError:
                self._degrade_to_serial()
                cond_worlds = self._conditioned.sample_worlds(
                    self.samples_per_epoch, thin=self.sweeps_per_epoch
                )
                free_worlds = self._free.sample_worlds(
                    self.samples_per_epoch, thin=self.sweeps_per_epoch
                )
        else:
            cond_worlds = self._conditioned.sample_worlds(
                self.samples_per_epoch, thin=self.sweeps_per_epoch
            )
            free_worlds = self._free.sample_worlds(
                self.samples_per_epoch, thin=self.sweeps_per_epoch
            )
        grad = weight_gradient(
            self.graph,
            cond_worlds,
            free_worlds,
            l2=self.l2,
            compiled=self._compiled,
        )
        values = self.graph.weights.values_array() + self.step_size * grad
        self.graph.weights.set_values_array(values)
        return float(np.linalg.norm(grad))

    def _degrade_to_serial(self) -> None:
        """Permanent fallback after a chain worker crash: abandon the
        pool and continue with in-process chains over the same (shared)
        compilation.  Chain states restart fresh — the persistent-chain
        warm start is lost, but the fit proceeds."""
        self.degradations += 1
        pool, self._pool = self._pool, None
        try:
            pool.close()
        except OSError:
            pass
        self._conditioned = GibbsSampler(
            self.graph, seed=self.rng, compiled=self._compiled
        )
        self._free = GibbsSampler(
            self.free_graph, seed=self.rng, compiled=self._compiled
        )

    def _epoch_worlds_parallel(self):
        """Advance both persistent chains concurrently; gather worlds."""
        pool = self._pool
        pool.push_weights(self.graph.weights)
        for worker in (0, 1):
            pool.send(
                worker,
                "chain_sample_worlds",
                chain_id=0,
                num_samples=self.samples_per_epoch,
                thin=self.sweeps_per_epoch,
            )
        worlds = []
        for worker in (0, 1):
            packed, count = pool.recv(worker)
            worlds.append(
                np.unpackbits(packed, axis=1, count=self.graph.num_vars).astype(
                    bool
                )
            )
        return worlds[0], worlds[1]

    def close(self) -> None:
        """Shut down chain workers (no-op for the serial learner)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def fit(self, num_epochs: int, record_loss: bool = True) -> LearningHistory:
        """Run ``num_epochs`` epochs; optionally record pseudo-NLL."""
        history = LearningHistory()
        start = time.perf_counter()
        for _ in range(num_epochs):
            grad_norm = self.epoch()
            history.grad_norms.append(grad_norm)
            history.times.append(time.perf_counter() - start)
            if record_loss:
                history.losses.append(self.evidence_pseudo_nll())
        return history

    # ------------------------------------------------------------------ #

    def evidence_pseudo_nll(self, fresh_cache: bool = False) -> float:
        """Negative pseudo-log-likelihood of the evidence variables.

        For each evidence variable v we score
        ``−log P(x_v = label | rest)`` on the *unclamped* graph, with the
        rest of the world taken from the conditioned chain's state.  This
        is the standard tractable loss proxy for MRF learning.

        The default path scores against the conditioned chain's *live*
        cache (in-process, or inside worker 0 for the pool learner), so
        per-epoch loss recording never rebuilds O(graph) cache state.
        ``fresh_cache=True`` forces the old build-a-cache-per-call path —
        kept as the equivalence reference.
        """
        evidence = self.graph.evidence
        if not evidence:
            return 0.0
        if fresh_cache:
            if self._pool is not None:
                state = self._pool.call(0, "chain_states", chain_ids=[0])[0]
            else:
                state = self._conditioned.state.copy()
            ev_vars, ev_vals = self.graph.evidence_arrays()
            state[ev_vars] = ev_vals
            cache = GibbsCache(self._compiled, state)
            total = 0.0
            for var, value in evidence.items():
                p_true = _sigmoid(cache.delta_energy(var, state))
                p = p_true if value else 1.0 - p_true
                total -= np.log(max(p, 1e-12))
            return total / len(evidence)
        if self._pool is not None:
            # Workers read weights from the shared region: publish any
            # between-epoch update before scoring there.
            self._pool.push_weights(self.graph.weights)
            return float(self._pool.call(0, "chain_pseudo_nll", chain_id=0))
        if self._scorer is None:
            self._scorer = EvidenceScorer(self._compiled, evidence)
        return self._scorer.nll(self._conditioned.cache, self._conditioned.state)
