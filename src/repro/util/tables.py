"""Plain-text table rendering for benchmark output.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; this module renders them readably without any plotting
dependency.
"""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers, rows, title=None) -> str:
    """Render ``rows`` (iterable of iterables) under ``headers`` as text."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
