"""Unit and property tests for the factor-graph model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import FactorGraph, Semantics, WeightStore

from tests.helpers import implication_graph, voting_graph


class TestWeightStore:
    def test_intern_returns_stable_ids(self):
        store = WeightStore()
        a = store.intern("a", initial=1.5)
        b = store.intern("b", initial=-0.5)
        assert a != b
        assert store.intern("a") == a
        assert store.value(a) == 1.5

    def test_reintern_does_not_overwrite_value(self):
        store = WeightStore()
        a = store.intern("a", initial=1.0)
        store.set_value(a, 2.0)
        assert store.intern("a", initial=99.0) == a
        assert store.value(a) == 2.0

    def test_fixed_flag_excluded_from_learnable(self):
        store = WeightStore()
        a = store.intern("soft", initial=0.0)
        store.intern("hard", initial=10.0, fixed=True)
        assert store.learnable_ids() == [a]

    def test_copy_is_independent(self):
        store = WeightStore()
        a = store.intern("a", initial=1.0)
        clone = store.copy()
        clone.set_value(a, 5.0)
        assert store.value(a) == 1.0
        assert clone.value(a) == 5.0
        # New interning in the clone must not leak back.
        clone.intern("b")
        assert store.id_for("b") is None

    def test_values_array_roundtrip(self):
        store = WeightStore()
        store.intern("a", initial=1.0)
        store.intern("b", initial=2.0)
        arr = store.values_array()
        assert np.allclose(arr, [1.0, 2.0])
        store.set_values_array([3.0, 4.0])
        assert store.value(0) == 3.0

    def test_values_array_shape_checked(self):
        store = WeightStore()
        store.intern("a")
        with pytest.raises(ValueError):
            store.set_values_array([1.0, 2.0])

    def test_key_lookup(self):
        store = WeightStore()
        a = store.intern(("rule", "feat"), initial=0.5)
        assert store.key_for(a) == ("rule", "feat")
        assert store.id_for(("rule", "feat")) == a
        assert dict(store.items()) == {("rule", "feat"): 0.5}


class TestGraphConstruction:
    def test_variable_ids_sequential(self):
        fg = FactorGraph()
        assert fg.add_variable() == 0
        assert fg.add_variable() == 1
        assert list(fg.add_variables(3)) == [2, 3, 4]
        assert fg.num_vars == 5

    def test_evidence_tracking(self):
        fg = FactorGraph()
        v = fg.add_variable(evidence=True)
        u = fg.add_variable()
        assert fg.is_evidence(v) and not fg.is_evidence(u)
        assert fg.evidence_value(v) is True
        assert fg.free_variables() == [u]
        fg.clear_evidence(v)
        assert fg.free_variables() == [v, u]

    def test_evidence_mask(self):
        fg = FactorGraph()
        fg.add_variable(evidence=False)
        fg.add_variable()
        mask = fg.evidence_mask()
        assert mask.tolist() == [True, False]

    def test_initial_assignment_respects_evidence(self):
        fg = FactorGraph()
        fg.add_variable(evidence=True)
        fg.add_variable(evidence=False)
        fg.add_variable()
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = fg.initial_assignment(rng)
            assert x[0] and not x[1]

    def test_factor_var_range_checked(self):
        fg = FactorGraph()
        v = fg.add_variable()
        wid = fg.weights.intern("w")
        with pytest.raises(ValueError):
            fg.add_bias_factor(wid, v + 1)
        with pytest.raises(ValueError):
            fg.add_ising_factor(wid, v, v)
        with pytest.raises(ValueError):
            fg.add_rule_factor(wid, v, [[(v + 3, True)]], Semantics.LINEAR)

    def test_weight_id_checked(self):
        fg = FactorGraph()
        v = fg.add_variable()
        with pytest.raises(ValueError):
            fg.add_bias_factor(7, v)

    def test_copy_shares_nothing_mutable(self):
        fg = voting_graph(2, 2)
        clone = fg.copy()
        clone.add_variable()
        clone.set_evidence(0, True)
        clone.weights.set_value(0, 99.0)
        assert fg.num_vars == clone.num_vars - 1
        assert not fg.is_evidence(0)
        assert fg.weights.value(0) != 99.0

    def test_validate_passes_on_wellformed(self):
        implication_graph().validate()

    def test_neighbor_pairs_cover_factor_scopes(self):
        fg = implication_graph()
        pairs = set(fg.neighbor_pairs())
        # q, a, b, c all co-occur in the single rule factor.
        assert (0, 1) in pairs and (1, 2) in pairs and (0, 3) in pairs
        assert all(a < b for a, b in pairs)


class TestEnergy:
    def test_bias_energy(self):
        fg = FactorGraph()
        v = fg.add_variable()
        wid = fg.weights.intern("b", initial=0.7)
        fg.add_bias_factor(wid, v)
        assert fg.energy(np.array([True])) == pytest.approx(0.7)
        assert fg.energy(np.array([False])) == pytest.approx(-0.7)

    def test_ising_energy(self):
        fg = FactorGraph()
        i = fg.add_variable()
        j = fg.add_variable()
        wid = fg.weights.intern("J", initial=0.5)
        fg.add_ising_factor(wid, i, j)
        assert fg.energy(np.array([True, True])) == pytest.approx(0.5)
        assert fg.energy(np.array([True, False])) == pytest.approx(-0.5)
        assert fg.energy(np.array([False, False])) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "semantics,expected_g2",
        [
            (Semantics.LINEAR, 2.0),
            (Semantics.RATIO, math.log(3)),
            (Semantics.LOGICAL, 1.0),
        ],
    )
    def test_rule_energy_uses_g_of_count(self, semantics, expected_g2):
        fg = voting_graph(2, 0, semantics=semantics, weight=1.0)
        # q true, both up voters true -> n = 2.
        x = np.array([True, True, True])
        assert fg.energy(x) == pytest.approx(expected_g2)
        # q false flips the sign.
        x = np.array([False, True, True])
        assert fg.energy(x) == pytest.approx(-expected_g2)

    def test_rule_energy_counts_only_satisfied_groundings(self):
        fg = voting_graph(3, 0, semantics=Semantics.LINEAR)
        x = np.array([True, True, False, True])  # q, up0, up1, up2
        assert fg.energy(x) == pytest.approx(2.0)

    def test_empty_grounding_is_vacuously_satisfied(self):
        fg = FactorGraph()
        q = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.5)
        fg.add_rule_factor(wid, q, [()], Semantics.LINEAR)
        assert fg.energy(np.array([True])) == pytest.approx(1.5)
        assert fg.energy(np.array([False])) == pytest.approx(-1.5)

    def test_negated_literal(self):
        fg = FactorGraph()
        q = fg.add_variable()
        a = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.0)
        fg.add_rule_factor(wid, q, [[(a, False)]], Semantics.LOGICAL)
        assert fg.energy(np.array([True, False])) == pytest.approx(1.0)
        assert fg.energy(np.array([True, True])) == pytest.approx(-0.0)

    def test_energy_shape_checked(self):
        fg = voting_graph(1, 1)
        with pytest.raises(ValueError):
            fg.energy(np.array([True, False]))

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=32, deadline=None)
    def test_voting_energy_closed_form(self, bits):
        """W = g(|Up ∩ I|) − g(|Down ∩ I|) with sign(q) (Ex. 2.5)."""
        fg = voting_graph(4, 4, semantics=Semantics.RATIO, weight=1.0)
        x = np.zeros(9, dtype=bool)
        x[0] = bool(bits & 1)
        for k in range(8):
            x[1 + k] = bool((bits >> k) & 1)
        n_up = int(x[1:5].sum())
        n_down = int(x[5:9].sum())
        sign = 1.0 if x[0] else -1.0
        expected = sign * (math.log1p(n_up) - math.log1p(n_down))
        assert fg.energy(x) == pytest.approx(expected)
