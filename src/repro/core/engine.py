"""The Incremental and Rerun engines compared throughout §4.

:class:`IncrementalEngine` implements the paper's full pipeline:

* **materialize once** — draw the sample bundle (best-effort within a
  budget, §3.3) and learn the variational approximation *from the same
  samples* (drawing them is the dominant materialization cost, so both
  strategies share it);
* **per development iteration** — receive a
  :class:`~repro.graph.delta.FactorGraphDelta` from incremental
  grounding, let the rule-based optimizer pick a strategy, run it, and
  fall back from sampling to variational when the bundle runs dry.

:class:`RerunEngine` is the baseline: apply the delta and run Gibbs on
the whole updated graph from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.optimizer import (
    SAMPLING,
    VARIATIONAL,
    OptimizerDecision,
    choose_strategy,
)
from repro.core.sampling import SampleMaterialization, make_sampler
from repro.core.variational import VariationalMaterialization
from repro.graph.delta import FactorGraphDelta, compose_deltas
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


@dataclass
class EngineConfig:
    """Tuning knobs; the defaults are scaled-down but proportionate to the
    paper's settings (1000 inference / 2000 materialization samples)."""

    materialization_samples: int | None = 500
    materialization_time_budget: float | None = None
    inference_steps: int = 300
    inference_samples: int = 200
    variational_lam: float = 0.1
    variational_inference_samples: int = 150
    burn_in: int = 20
    seed: int | None = None
    #: Sampling parallelism: >1 fills the materialization bundle with
    #: parallel chains and runs Rerun inference on a sharded sampler
    #: (see ``repro.inference.parallel``); 1 is the serial fallback.
    n_workers: int = 1
    #: Incremental compilation (Rerun): keep one CompiledFactorGraph and
    #: patch it with each delta (``apply_delta``) instead of recompiling —
    #: with ``n_workers > 1`` the worker pool and its shared-memory export
    #: survive updates instead of respawning.  False restores the
    #: recompile-per-update baseline (the O(graph) setup cost the paper's
    #: Rerun system pays; kept for the update-latency benchmark).
    reuse_compilation: bool = True
    #: Warm-start (Rerun): persistent chains keep their assignments
    #: across updates; new variables initialize from their bias and
    #: evidence is re-clamped through the caches.  False draws a fresh
    #: chain per update.
    warm_start: bool = True
    #: Burn-in for warm-started updates; ``None`` falls back to
    #: ``burn_in``.  Warm chains start near the updated distribution's
    #: typical set (Pr^Δ ≈ Pr⁰), so a shorter burn-in usually suffices.
    incremental_burn_in: int | None = None
    #: Patch (rather than extend-per-proposal) the materialized tuple
    #: bundle when an update appends at most this fraction of the
    #: graph's variables (§3.2.2's sampling approach, applied to the
    #: bundle itself).
    bundle_patch_fraction: float = 0.25
    #: Tombstone/patched density above which the compiled factor graph
    #: recompacts (full recompile, amortized across updates).
    compact_threshold: float = 0.25
    #: Lesion knobs — remove a strategy to reproduce Fig. 11.
    strategies: tuple = (SAMPLING, VARIATIONAL)
    #: False reproduces the NoWorkloadInfo baseline: sampling until the
    #: bundle is exhausted, then variational, ignoring the delta's type.
    workload_aware: bool = True


@dataclass
class InferenceOutcome:
    """Result of evaluating one update."""

    marginals: np.ndarray
    strategy: str
    seconds: float
    decision: OptimizerDecision | None = None
    acceptance_rate: float | None = None
    samples_used: int = 0
    fell_back: bool = False
    details: dict = field(default_factory=dict)


class IncrementalEngine:
    """Materialize once, evaluate many updates incrementally."""

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        # Snapshot: the materialized distribution must not drift if the
        # caller keeps mutating weights.
        self.base_graph = graph.copy()
        self.current_graph = self.base_graph
        self.cumulative_delta: FactorGraphDelta | None = None
        self.rng = as_generator(self.config.seed)
        self.sampling = SampleMaterialization(
            self.base_graph, seed=self.rng, n_workers=self.config.n_workers
        )
        self.variational = VariationalMaterialization(
            self.base_graph, lam=self.config.variational_lam, seed=self.rng
        )
        self.materialized = False

    # ------------------------------------------------------------------ #

    def materialize(self) -> dict:
        """Run both materializations; returns timing/size stats."""
        cfg = self.config
        start = time.perf_counter()
        collected = self.sampling.materialize(
            num_samples=cfg.materialization_samples,
            time_budget=cfg.materialization_time_budget,
            burn_in=cfg.burn_in,
        )
        sampling_seconds = time.perf_counter() - start
        start = time.perf_counter()
        if VARIATIONAL in cfg.strategies:
            # Reuse the bundle: drawing samples dominates materialization.
            self.variational.materialize(samples=self.sampling.samples)
        variational_seconds = time.perf_counter() - start
        self.materialized = True
        return {
            "samples": collected,
            "sampling_seconds": sampling_seconds,
            "variational_seconds": variational_seconds,
            "approx_factors": self.variational.num_factors,
            "bundle_bits": self.sampling.storage_bits(),
        }

    # ------------------------------------------------------------------ #

    def _decide(self, delta: FactorGraphDelta) -> OptimizerDecision:
        cfg = self.config
        if SAMPLING not in cfg.strategies:
            return OptimizerDecision(VARIATIONAL, 0, "sampling disabled (lesion)")
        if VARIATIONAL not in cfg.strategies:
            return OptimizerDecision(SAMPLING, 0, "variational disabled (lesion)")
        if not cfg.workload_aware:
            if self.sampling.samples_remaining > 0:
                return OptimizerDecision(
                    SAMPLING, 0, "NoWorkloadInfo: samples remain"
                )
            return OptimizerDecision(
                VARIATIONAL, 0, "NoWorkloadInfo: bundle exhausted"
            )
        return choose_strategy(
            self.cumulative_delta if self.cumulative_delta is not None else delta,
            self.sampling.samples_remaining,
        )

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        """Evaluate one update (delta relative to the *current* graph)."""
        if not self.materialized:
            raise RuntimeError("materialize() before apply_update()")
        cfg = self.config
        started = time.perf_counter()

        if delta.is_empty:
            # No-op update: the distribution is unchanged, so skip the
            # O(graph) bookkeeping (variational splice, delta composition,
            # graph rebuild) and go straight to the strategy — which still
            # consumes the bundle, exactly as a non-short-circuited empty
            # update would.
            if self.cumulative_delta is None:
                self.cumulative_delta = delta
            decision = self._decide(delta)
            outcome = self._run_strategy(decision)
            outcome.seconds = time.perf_counter() - started
            outcome.details["short_circuit"] = "empty delta"
            return outcome

        # Keep the variational graph in sync (cheap splice) regardless of
        # the strategy chosen for this update, so a later fallback works.
        if VARIATIONAL in cfg.strategies:
            self.variational.apply_update(self.current_graph, delta)

        if self.cumulative_delta is None:
            self.cumulative_delta = delta
        else:
            self.cumulative_delta = compose_deltas(
                self.base_graph, self.cumulative_delta, delta
            )
        self.current_graph = delta.apply(self.current_graph)

        # Patch the tuple bundle in place for small variable appends so
        # the sampling strategy proposes full-width worlds without
        # per-proposal extension work.  Columns are positional (base
        # variables then appended variables in cumulative order), so the
        # bundle must have kept pace with every prior append — once one
        # oversized update is skipped, later ones extend per proposal.
        if (
            delta.num_new_vars
            and SAMPLING in cfg.strategies
            and self.sampling.width
            == self.current_graph.num_vars - delta.num_new_vars
            and delta.num_new_vars
            <= cfg.bundle_patch_fraction * max(self.current_graph.num_vars, 1)
        ):
            self.sampling.extend_bundle(delta.num_new_vars)

        decision = self._decide(delta)
        outcome = self._run_strategy(decision)
        outcome.seconds = time.perf_counter() - started
        return outcome

    def _run_strategy(self, decision: OptimizerDecision) -> InferenceOutcome:
        cfg = self.config
        if decision.strategy == SAMPLING:
            result = self.sampling.infer(
                self.cumulative_delta, num_steps=cfg.inference_steps
            )
            if result.exhausted and VARIATIONAL in cfg.strategies:
                marginals = self.variational.infer(
                    num_samples=cfg.variational_inference_samples,
                    burn_in=cfg.burn_in,
                )
                return InferenceOutcome(
                    marginals=self._clamp(marginals),
                    strategy=VARIATIONAL,
                    seconds=0.0,
                    decision=decision,
                    acceptance_rate=result.acceptance_rate,
                    samples_used=result.proposals_used,
                    fell_back=True,
                )
            return InferenceOutcome(
                marginals=self._clamp(result.marginals),
                strategy=SAMPLING,
                seconds=0.0,
                decision=decision,
                acceptance_rate=result.acceptance_rate,
                samples_used=result.proposals_used,
            )
        marginals = self.variational.infer(
            num_samples=cfg.variational_inference_samples, burn_in=cfg.burn_in
        )
        return InferenceOutcome(
            marginals=self._clamp(marginals),
            strategy=VARIATIONAL,
            seconds=0.0,
            decision=decision,
        )

    def _clamp(self, marginals: np.ndarray) -> np.ndarray:
        marginals = np.asarray(marginals, dtype=float).copy()
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        return marginals


class RerunEngine:
    """The Rerun baseline: full Gibbs on the updated graph, every time.

    The *inference* cost stays O(graph) per update — that is the paper's
    baseline semantics.  The *setup* cost no longer is: by default the
    engine keeps one :class:`CompiledFactorGraph` and patches it with
    each delta (``apply_delta``), warm-starts its persistent sampler
    (chains keep their assignments; with ``n_workers > 1`` the worker
    pool and shared-memory export survive the update instead of
    respawning).  ``EngineConfig.reuse_compilation=False`` restores the
    recompile-per-update behaviour for baseline measurements.
    """

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.current_graph = graph.copy()
        self.rng = as_generator(self.config.seed)
        self._compiled = None
        self._sampler = None
        self._last_marginals = None
        self.updates_patched = 0
        self.updates_recompiled = 0

    def _fresh_sampler(self):
        from repro.graph.compiled import CompiledFactorGraph

        if self._sampler is not None and hasattr(self._sampler, "close"):
            self._sampler.close()
        self._compiled = CompiledFactorGraph(self.current_graph)
        self._sampler = make_sampler(
            self.current_graph,
            seed=self.rng,
            compiled=self._compiled,
            n_workers=self.config.n_workers,
            incremental=self.config.reuse_compilation,
        )
        self.updates_recompiled += 1

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        started = time.perf_counter()
        cfg = self.config
        if delta.is_empty and self._last_marginals is not None:
            # No-op update: the distribution is unchanged — reuse the
            # previous marginals instead of recompiling, respawning and
            # re-running inference.
            return InferenceOutcome(
                marginals=self._last_marginals.copy(),
                strategy="rerun",
                seconds=time.perf_counter() - started,
                details={"short_circuit": "empty delta"},
            )
        incremental = cfg.reuse_compilation and self._sampler is not None
        self.current_graph = delta.apply(
            self.current_graph, validate=not incremental
        )
        if incremental:
            patch = self._compiled.apply_delta(
                delta, self.current_graph, compact_threshold=cfg.compact_threshold
            )
            if cfg.warm_start:
                self._sampler.apply_patch(patch)
            else:
                # Fresh chains over the *patched* compilation (no
                # recompile; the warm-start lesion only resets state).
                if hasattr(self._sampler, "close"):
                    self._sampler.close()
                self._sampler = make_sampler(
                    self.current_graph,
                    seed=self.rng,
                    compiled=self._compiled,
                    n_workers=cfg.n_workers,
                    incremental=True,
                )
            burn = (
                cfg.incremental_burn_in
                if cfg.incremental_burn_in is not None
                else cfg.burn_in
            )
            self.updates_patched += 1
        else:
            self._fresh_sampler()
            burn = cfg.burn_in
        marginals = self._sampler.estimate_marginals(
            cfg.inference_samples, burn_in=burn
        )
        if not cfg.reuse_compilation:
            # Baseline mode keeps the original throwaway lifecycle.
            if hasattr(self._sampler, "close"):
                self._sampler.close()
            self._sampler = None
            self._compiled = None
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        self._last_marginals = marginals
        return InferenceOutcome(
            marginals=marginals,
            strategy="rerun",
            seconds=time.perf_counter() - started,
        )

    def close(self) -> None:
        """Release the persistent sampler (worker pool, shared memory)."""
        if self._sampler is not None and hasattr(self._sampler, "close"):
            self._sampler.close()
        self._sampler = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
