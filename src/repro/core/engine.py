"""The Incremental and Rerun engines compared throughout §4.

:class:`IncrementalEngine` implements the paper's full pipeline:

* **materialize once** — draw the sample bundle (best-effort within a
  budget, §3.3) and learn the variational approximation *from the same
  samples* (drawing them is the dominant materialization cost, so both
  strategies share it);
* **per development iteration** — receive a
  :class:`~repro.graph.delta.FactorGraphDelta` from incremental
  grounding, let the rule-based optimizer pick a strategy, run it, and
  fall back from sampling to variational when the bundle runs dry.

:class:`RerunEngine` is the baseline: apply the delta and run Gibbs on
the whole updated graph from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.optimizer import (
    SAMPLING,
    VARIATIONAL,
    OptimizerDecision,
    choose_strategy,
)
from repro.core.sampling import SampleMaterialization, make_sampler
from repro.core.variational import VariationalMaterialization
from repro.graph.delta import FactorGraphDelta, compose_deltas
from repro.graph.factor_graph import FactorGraph
from repro.reliability.faults import maybe_fire
from repro.reliability.snapshots import (
    IncrementalUpdateSnapshot,
    RelearnSnapshot,
    RerunUpdateSnapshot,
)
from repro.reliability.wal import DeltaLog
from repro.util.rng import as_generator


@dataclass
class EngineConfig:
    """Tuning knobs; the defaults are scaled-down but proportionate to the
    paper's settings (1000 inference / 2000 materialization samples)."""

    materialization_samples: int | None = 500
    materialization_time_budget: float | None = None
    inference_steps: int = 300
    inference_samples: int = 200
    variational_lam: float = 0.1
    variational_inference_samples: int = 150
    burn_in: int = 20
    seed: int | None = None
    #: Sampling parallelism: >1 fills the materialization bundle with
    #: parallel chains and runs Rerun inference on a sharded sampler
    #: (see ``repro.inference.parallel``); 1 is the serial fallback.
    n_workers: int = 1
    #: Incremental compilation (Rerun): keep one CompiledFactorGraph and
    #: patch it with each delta (``apply_delta``) instead of recompiling —
    #: with ``n_workers > 1`` the worker pool and its shared-memory export
    #: survive updates instead of respawning.  False restores the
    #: recompile-per-update baseline (the O(graph) setup cost the paper's
    #: Rerun system pays; kept for the update-latency benchmark).
    reuse_compilation: bool = True
    #: Warm-start (Rerun): persistent chains keep their assignments
    #: across updates; new variables initialize from their bias and
    #: evidence is re-clamped through the caches.  False draws a fresh
    #: chain per update.
    warm_start: bool = True
    #: Burn-in for warm-started updates; ``None`` falls back to
    #: ``burn_in``.  Warm chains start near the updated distribution's
    #: typical set (Pr^Δ ≈ Pr⁰), so a shorter burn-in usually suffices.
    incremental_burn_in: int | None = None
    #: Patch (rather than extend-per-proposal) the materialized tuple
    #: bundle when an update appends at most this fraction of the
    #: graph's variables (§3.2.2's sampling approach, applied to the
    #: bundle itself).
    bundle_patch_fraction: float = 0.25
    #: Tombstone/patched density above which the compiled factor graph
    #: recompacts (full recompile, amortized across updates).
    compact_threshold: float = 0.25
    #: Persistent incremental learning: keep one :class:`SGDLearner`
    #: whose chains, compiled gradient substrate and weight store are
    #: patched across ``apply_update`` calls, so ``relearn()`` warm-starts
    #: (App. B.3's SGD+Warmstart).  False is the lesion reproducing the
    #: SGD-cold baseline of Fig. 16: every ``relearn()`` constructs a
    #: fresh learner with zeroed weights and fresh chains (still over the
    #: engine's patched compilation).
    warm_learning: bool = True
    #: Transactional updates: every ``apply_update``/``relearn`` runs
    #: under a bounded snapshot of the touched state plus a delta WAL —
    #: a failure anywhere in the patch → infer → relearn pipeline rolls
    #: the engine back to its pre-update state (caches verified
    #: consistent) and the WAL records the rolled-back transaction.
    #: False removes the snapshot/WAL overhead (trusted callers).
    transactional: bool = True
    #: File path for the delta WAL; ``None`` keeps it in memory.  A
    #: file-backed WAL survives the process, so committed updates can be
    #: replayed onto a rebuilt engine after a crash.
    wal_path: str | None = None
    #: Lesion knobs — remove a strategy to reproduce Fig. 11.
    strategies: tuple = (SAMPLING, VARIATIONAL)
    #: False reproduces the NoWorkloadInfo baseline: sampling until the
    #: bundle is exhausted, then variational, ignoring the delta's type.
    workload_aware: bool = True


@dataclass
class InferenceOutcome:
    """Result of evaluating one update."""

    marginals: np.ndarray
    strategy: str
    seconds: float
    decision: OptimizerDecision | None = None
    acceptance_rate: float | None = None
    samples_used: int = 0
    fell_back: bool = False
    details: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ReadSnapshot:
    """A consistent, zero-copy view of an engine's answered marginals.

    Engines *replace* their marginal array on every committed update
    (``_last_marginals`` is never mutated in place), so a snapshot is a
    read-only numpy view over the committed array: holding it costs
    nothing and stays bit-exact while later updates commit underneath —
    snapshot isolation by immutability.  ``txn`` counts the engine's
    committed updates at capture time; the service re-stamps snapshots
    with its WAL transaction id.

    ``chain_state`` (optional) reuses the live chain assignment —
    zero-copy out of the sharded sampler's shared-memory export when one
    is running.  Unlike ``marginals`` it views live (mutated-in-place)
    buffers: it is consistent at update boundaries, not across them.
    """

    marginals: np.ndarray
    txn: int
    num_vars: int
    chain_state: np.ndarray | None = None


def _read_only(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.flags.writeable = False
    return view


def _relearn(engine, compiled, num_epochs: int, record_loss: bool, learner_kwargs):
    """Shared persistent-relearn step of both engines.

    Reuses the engine's patched learner when it is warm and current
    (``learns_warm``); otherwise constructs a fresh one over ``compiled``
    (``learns_cold``) — with zeroed weights under the
    ``warm_learning=False`` lesion.  ``learner_kwargs`` only apply at
    construction time."""
    from repro.learning.sgd import SGDLearner

    cfg = engine.config
    if cfg.warm_learning and engine._learner is not None and not engine._learner_stale:
        engine.learns_warm += 1
    else:
        if engine._learner is not None:
            engine._learner.close()
        was_patched = compiled is not None and compiled.has_patches
        engine._learner = SGDLearner(
            engine.current_graph,
            warmstart=cfg.warm_learning,
            seed=engine.rng,
            compiled=compiled,
            **learner_kwargs,
        )
        if was_patched and not compiled.has_patches:
            # A pool-backed learner's shared export compacted the
            # compilation: any other holder (RerunEngine's persistent
            # sampler) must re-derive its plan/cache.
            resync = getattr(engine, "_resync_sampler", None)
            if resync is not None:
                resync()
        engine._learner_stale = False
        engine.learns_cold += 1
    return engine._learner.fit(num_epochs, record_loss=record_loss)


class IncrementalEngine:
    """Materialize once, evaluate many updates incrementally."""

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        # Snapshot: the materialized distribution must not drift if the
        # caller keeps mutating weights.
        self.base_graph = graph.copy()
        self.current_graph = self.base_graph
        self.cumulative_delta: FactorGraphDelta | None = None
        self.rng = as_generator(self.config.seed)
        self.sampling = SampleMaterialization(
            self.base_graph, seed=self.rng, n_workers=self.config.n_workers
        )
        self.variational = VariationalMaterialization(
            self.base_graph, lam=self.config.variational_lam, seed=self.rng
        )
        self.materialized = False
        self._last_marginals = None
        # Persistent-learning state: a compiled view of the *current*
        # graph, patched with every delta once learning starts, plus the
        # learner whose chains warm-start across those patches.
        self._learn_compiled = None
        self._learner = None
        self._learner_stale = False
        self.learns_warm = 0
        self.learns_cold = 0
        self.wal = DeltaLog(self.config.wal_path) if self.config.transactional else None
        self.rollbacks = 0
        self.committed_updates = 0

    # ------------------------------------------------------------------ #

    def read_snapshot(self) -> ReadSnapshot | None:
        """Zero-copy snapshot of the last committed marginals (or None
        before the first inference).  See :class:`ReadSnapshot`."""
        if self._last_marginals is None:
            return None
        marginals = _read_only(self._last_marginals)
        return ReadSnapshot(
            marginals=marginals,
            txn=self.committed_updates,
            num_vars=int(marginals.shape[0]),
        )

    # ------------------------------------------------------------------ #

    def materialize(self) -> dict:
        """Run both materializations; returns timing/size stats."""
        cfg = self.config
        start = time.perf_counter()
        collected = self.sampling.materialize(
            num_samples=cfg.materialization_samples,
            time_budget=cfg.materialization_time_budget,
            burn_in=cfg.burn_in,
        )
        sampling_seconds = time.perf_counter() - start
        start = time.perf_counter()
        if VARIATIONAL in cfg.strategies:
            # Reuse the bundle: drawing samples dominates materialization.
            self.variational.materialize(samples=self.sampling.samples)
        variational_seconds = time.perf_counter() - start
        self.materialized = True
        return {
            "samples": collected,
            "sampling_seconds": sampling_seconds,
            "variational_seconds": variational_seconds,
            "approx_factors": self.variational.num_factors,
            "bundle_bits": self.sampling.storage_bits(),
        }

    # ------------------------------------------------------------------ #

    def _decide(self, delta: FactorGraphDelta) -> OptimizerDecision:
        cfg = self.config
        if SAMPLING not in cfg.strategies:
            return OptimizerDecision(VARIATIONAL, 0, "sampling disabled (lesion)")
        if VARIATIONAL not in cfg.strategies:
            return OptimizerDecision(SAMPLING, 0, "variational disabled (lesion)")
        if not cfg.workload_aware:
            if self.sampling.samples_remaining > 0:
                return OptimizerDecision(
                    SAMPLING, 0, "NoWorkloadInfo: samples remain"
                )
            return OptimizerDecision(
                VARIATIONAL, 0, "NoWorkloadInfo: bundle exhausted"
            )
        return choose_strategy(
            self.cumulative_delta if self.cumulative_delta is not None else delta,
            self.sampling.samples_remaining,
        )

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        """Evaluate one update (delta relative to the *current* graph).

        Transactional by default (``EngineConfig.transactional``): the
        delta is WAL-logged before anything mutates, and a failure
        anywhere in splice → patch → infer restores the engine —
        materializations, compiled substrate, learner chains, rng — to
        its pre-update state, so the retried apply matches a never-failed
        one exactly (serial components; pool-backed ones rebuild cold)."""
        if not self.config.transactional:
            outcome = self._apply_update_inner(delta)
            self.committed_updates += 1
            return outcome
        snap = IncrementalUpdateSnapshot(self)
        txn = self.wal.begin(delta)
        try:
            maybe_fire("engine.update.start")
            outcome = self._apply_update_inner(delta)
        except Exception as exc:
            self.rollbacks += 1
            snap.restore()
            self.wal.rollback(txn, reason=repr(exc))
            raise
        self.wal.commit(txn)
        self.committed_updates += 1
        return outcome

    def _apply_update_inner(self, delta: FactorGraphDelta) -> InferenceOutcome:
        if not self.materialized:
            raise RuntimeError("materialize() before apply_update()")
        cfg = self.config
        started = time.perf_counter()

        if delta.is_empty:
            # No-op update: the distribution is unchanged, so skip the
            # O(graph) bookkeeping (variational splice, delta composition,
            # graph rebuild) and go straight to the strategy — which still
            # consumes the bundle, exactly as a non-short-circuited empty
            # update would.
            if self.cumulative_delta is None:
                self.cumulative_delta = delta
            decision = self._decide(delta)
            outcome = self._run_strategy(decision)
            outcome.seconds = time.perf_counter() - started
            outcome.details["short_circuit"] = "empty delta"
            self._last_marginals = outcome.marginals
            return outcome

        # Keep the variational graph in sync (cheap splice) regardless of
        # the strategy chosen for this update, so a later fallback works.
        if VARIATIONAL in cfg.strategies:
            self.variational.apply_update(self.current_graph, delta)

        if self.cumulative_delta is None:
            self.cumulative_delta = delta
        else:
            self.cumulative_delta = compose_deltas(
                self.base_graph, self.cumulative_delta, delta
            )

        # The compiled substrate is the source of truth for the current
        # graph: the first structural update compiles once (detaching
        # from the frozen Pr⁰ snapshot), every later update is an O(|Δ|)
        # patch, and ``current_graph`` is the substrate's lazy view — no
        # ``delta.apply`` materialization on this path.  When a
        # persistent learner exists its chains warm-start across the
        # same patch.
        if self._learn_compiled is None:
            from repro.graph.compiled import CompiledFactorGraph

            if self.current_graph is self.base_graph:
                # The substrate owns graph state (weights, evidence,
                # names) from compile time on; detach so Pr⁰ stays
                # frozen.
                self.current_graph = self.base_graph.copy()
            self._learn_compiled = CompiledFactorGraph(self.current_graph)
        learn_patch = self._learn_compiled.apply_delta(
            delta, compact_threshold=cfg.compact_threshold
        )
        self.current_graph = self._learn_compiled.graph
        if self._learner is not None:
            if cfg.warm_learning:
                self._learner.apply_patch(learn_patch)
            else:
                self._learner_stale = True

        # Patch the tuple bundle in place for small variable appends so
        # the sampling strategy proposes full-width worlds without
        # per-proposal extension work.  Columns are positional (base
        # variables then appended variables in cumulative order), so the
        # bundle must have kept pace with every prior append — once one
        # oversized update is skipped, later ones extend per proposal.
        if (
            delta.num_new_vars
            and SAMPLING in cfg.strategies
            and self.sampling.width
            == self.current_graph.num_vars - delta.num_new_vars
            and delta.num_new_vars
            <= cfg.bundle_patch_fraction * max(self.current_graph.num_vars, 1)
        ):
            self.sampling.extend_bundle(delta.num_new_vars)
        maybe_fire("engine.update.patched")

        decision = self._decide(delta)
        outcome = self._run_strategy(decision)
        maybe_fire("engine.update.inferred")
        outcome.seconds = time.perf_counter() - started
        self._last_marginals = outcome.marginals
        return outcome

    # ------------------------------------------------------------------ #

    def relearn(self, num_epochs: int, record_loss: bool = True, **learner_kwargs):
        """Re-learn the weights of the *current* graph, persistently.

        The first call compiles the current graph once; every subsequent
        ``apply_update`` patches that compilation in place, and with
        ``EngineConfig.warm_learning`` (default) the learner's persistent
        chains and weight store ride along — so each relearn is the
        paper's SGD+Warmstart step (App. B.3) with O(|Δ|) setup.  Weights
        are updated in place on ``current_graph.weights``.  Returns the
        :class:`~repro.learning.sgd.LearningHistory` of this run.

        Transactional (``EngineConfig.transactional``): a failure mid-fit
        restores the weight store, the learner's chains and the rng.
        """
        if self.config.transactional:
            snap = RelearnSnapshot(self)
            try:
                maybe_fire("engine.relearn.start")
                return self._relearn_inner(num_epochs, record_loss, learner_kwargs)
            except Exception:
                self.rollbacks += 1
                snap.restore()
                raise
        return self._relearn_inner(num_epochs, record_loss, learner_kwargs)

    def _relearn_inner(self, num_epochs, record_loss, learner_kwargs):
        if self._learn_compiled is None:
            from repro.graph.compiled import CompiledFactorGraph

            if self.current_graph is self.base_graph:
                # Learning mutates weights in place; detach from the
                # materialized snapshot so Pr⁰ stays frozen.
                self.current_graph = self.base_graph.copy()
            self._learn_compiled = CompiledFactorGraph(self.current_graph)
        return _relearn(
            self, self._learn_compiled, num_epochs, record_loss, learner_kwargs
        )

    def close(self) -> None:
        """Release the persistent learner (worker pools, if any)."""
        if self._learner is not None:
            self._learner.close()
            self._learner = None
        if self.wal is not None:
            self.wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _exhausted_marginals(self, fallback: np.ndarray) -> np.ndarray:
        """Best available marginals when no inference step can run.

        Prefers the previous update's answer (the chain of truth under
        the sampling-only lesion) over ``fallback`` — the exhausted
        result's base-marginal padding built by
        :meth:`SampleMaterialization.infer`.  Evidence re-clamping
        happens in :meth:`_clamp`."""
        n = self.current_graph.num_vars
        out = np.asarray(fallback, dtype=float).copy()
        if self._last_marginals is not None:
            last = self._last_marginals
            out[: min(last.shape[0], n)] = last[:n]
        return out

    def _run_strategy(self, decision: OptimizerDecision) -> InferenceOutcome:
        cfg = self.config
        if decision.strategy == SAMPLING:
            result = self.sampling.infer(
                self.cumulative_delta, num_steps=cfg.inference_steps
            )
            if (
                result.exhausted
                and result.proposals_used == 0
                and VARIATIONAL not in cfg.strategies
            ):
                # Sampling-only lesion with a dry bundle: zero MH steps
                # executed, so ``result.marginals`` carries no evidence
                # about the updated distribution — ship the last known
                # marginals (flagged exhausted) instead of an artifact.
                return InferenceOutcome(
                    marginals=self._clamp(self._exhausted_marginals(result.marginals)),
                    strategy=SAMPLING,
                    seconds=0.0,
                    decision=decision,
                    acceptance_rate=result.acceptance_rate,
                    samples_used=0,
                    details={"exhausted": True},
                )
            if result.exhausted and VARIATIONAL in cfg.strategies:
                marginals = self.variational.infer(
                    num_samples=cfg.variational_inference_samples,
                    burn_in=cfg.burn_in,
                )
                return InferenceOutcome(
                    marginals=self._clamp(marginals),
                    strategy=VARIATIONAL,
                    seconds=0.0,
                    decision=decision,
                    acceptance_rate=result.acceptance_rate,
                    samples_used=result.proposals_used,
                    fell_back=True,
                )
            return InferenceOutcome(
                marginals=self._clamp(result.marginals),
                strategy=SAMPLING,
                seconds=0.0,
                decision=decision,
                acceptance_rate=result.acceptance_rate,
                samples_used=result.proposals_used,
            )
        marginals = self.variational.infer(
            num_samples=cfg.variational_inference_samples, burn_in=cfg.burn_in
        )
        return InferenceOutcome(
            marginals=self._clamp(marginals),
            strategy=VARIATIONAL,
            seconds=0.0,
            decision=decision,
        )

    def _clamp(self, marginals: np.ndarray) -> np.ndarray:
        marginals = np.asarray(marginals, dtype=float).copy()
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        return marginals


class RerunEngine:
    """The Rerun baseline: full Gibbs on the updated graph, every time.

    The *inference* cost stays O(graph) per update — that is the paper's
    baseline semantics.  The *setup* cost no longer is: by default the
    engine keeps one :class:`CompiledFactorGraph` and patches it with
    each delta (``apply_delta``), warm-starts its persistent sampler
    (chains keep their assignments; with ``n_workers > 1`` the worker
    pool and shared-memory export survive the update instead of
    respawning).  ``EngineConfig.reuse_compilation=False`` restores the
    recompile-per-update behaviour for baseline measurements.
    """

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.current_graph = graph.copy()
        self.rng = as_generator(self.config.seed)
        self._compiled = None
        self._sampler = None
        self._last_marginals = None
        self.updates_patched = 0
        self.updates_recompiled = 0
        self._learner = None
        self._learner_stale = False
        self.learns_warm = 0
        self.learns_cold = 0
        self.wal = DeltaLog(self.config.wal_path) if self.config.transactional else None
        self.rollbacks = 0
        self.committed_updates = 0

    def read_snapshot(self) -> ReadSnapshot | None:
        """Zero-copy snapshot of the last committed marginals (or None
        before the first inference).

        When the persistent sampler is sharded, ``chain_state`` reuses
        the shared-memory export's published state buffer directly
        (:meth:`ShardedGibbsSampler.state_view`) — no pool round-trip, no
        copy; see :class:`ReadSnapshot` for its consistency caveat."""
        if self._last_marginals is None:
            return None
        marginals = _read_only(self._last_marginals)
        chain_state = None
        view = getattr(self._sampler, "state_view", None)
        if view is not None:
            chain_state = view()
        elif self._sampler is not None:
            chain_state = _read_only(self._sampler.state)
        return ReadSnapshot(
            marginals=marginals,
            txn=self.committed_updates,
            num_vars=int(marginals.shape[0]),
            chain_state=chain_state,
        )

    def _fresh_sampler(self):
        from repro.graph.compiled import CompiledFactorGraph

        if self._sampler is not None and hasattr(self._sampler, "close"):
            self._sampler.close()
        self._compiled = CompiledFactorGraph(self.current_graph)
        self._sampler = make_sampler(
            self.current_graph,
            seed=self.rng,
            compiled=self._compiled,
            n_workers=self.config.n_workers,
            incremental=self.config.reuse_compilation,
        )
        self.updates_recompiled += 1

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        """Apply one delta and re-run inference (transactional: a failure
        in patch → sample rolls the compiled substrate, the persistent
        sampler and the rng back to the pre-update state)."""
        if not self.config.transactional:
            outcome = self._apply_update_inner(delta)
            self.committed_updates += 1
            return outcome
        snap = RerunUpdateSnapshot(self)
        txn = self.wal.begin(delta)
        try:
            maybe_fire("engine.update.start")
            outcome = self._apply_update_inner(delta)
        except Exception as exc:
            self.rollbacks += 1
            snap.restore()
            self.wal.rollback(txn, reason=repr(exc))
            raise
        self.wal.commit(txn)
        self.committed_updates += 1
        return outcome

    def _apply_update_inner(self, delta: FactorGraphDelta) -> InferenceOutcome:
        started = time.perf_counter()
        cfg = self.config
        if delta.is_empty and self._last_marginals is not None:
            # No-op update: the distribution is unchanged — reuse the
            # previous marginals instead of recompiling, respawning and
            # re-running inference.
            return InferenceOutcome(
                marginals=self._last_marginals.copy(),
                strategy="rerun",
                seconds=time.perf_counter() - started,
                details={"short_circuit": "empty delta"},
            )
        if not cfg.reuse_compilation:
            # Recompile lesion / rerun baseline: materialize the updated
            # graph and rebuild everything from scratch.  This is the
            # only engine path that still pays the O(#factors)
            # ``delta.apply`` copy.
            self.current_graph = delta.apply(self.current_graph)
            self._fresh_sampler()
            burn = cfg.burn_in
            if self._learner is not None:
                # The compilation was thrown away: the learner cannot be
                # patched onto it and is rebuilt at the next relearn.
                self._learner_stale = True
        else:
            incremental = self._compiled is not None
            if not incremental:
                from repro.graph.compiled import CompiledFactorGraph

                # First update: compile the pre-delta graph once.  The
                # substrate owns graph state from here on; this update
                # and every later one apply as O(|Δ|) patches and
                # ``current_graph`` is the substrate's lazy view.
                self._compiled = CompiledFactorGraph(self.current_graph)
            patch = self._compiled.apply_delta(
                delta, compact_threshold=cfg.compact_threshold
            )
            self.current_graph = self._compiled.graph
            if self._sampler is None or not incremental:
                # First update, or compilation primed by an early
                # relearn(): start the persistent sampler on the patched
                # substrate.
                if self._sampler is not None and hasattr(self._sampler, "close"):
                    self._sampler.close()
                self._sampler = make_sampler(
                    self.current_graph,
                    seed=self.rng,
                    compiled=self._compiled,
                    n_workers=cfg.n_workers,
                    incremental=True,
                )
            elif cfg.warm_start:
                self._sampler.apply_patch(patch)
            else:
                # Fresh chains over the *patched* compilation (no
                # recompile; the warm-start lesion only resets state).
                if hasattr(self._sampler, "close"):
                    self._sampler.close()
                self._sampler = make_sampler(
                    self.current_graph,
                    seed=self.rng,
                    compiled=self._compiled,
                    n_workers=cfg.n_workers,
                    incremental=True,
                )
            if incremental:
                burn = (
                    cfg.incremental_burn_in
                    if cfg.incremental_burn_in is not None
                    else cfg.burn_in
                )
                self.updates_patched += 1
            else:
                # Counter/burn-in parity with the historical first-update
                # recompile: the one-time substrate compile is accounted
                # as a recompiled update and burns in from scratch.
                burn = cfg.burn_in
                self.updates_recompiled += 1
            # Sampler setup may have compacted the substrate underneath
            # the patch (sharded samplers need a clean CSR snapshot);
            # later patch consumers must then rebuild, not splice.
            if patch.structural and not self._compiled.has_patches:
                patch.compacted = True
            # The persistent learner rides the same patch (warm), or is
            # marked for a cold rebuild under the warm_learning lesion.
            if self._learner is not None:
                if cfg.warm_learning:
                    was_compacted = patch.compacted
                    self._learner.apply_patch(patch)
                    if patch.compacted and not was_compacted:
                        # The learner's pool escalated to a compaction
                        # after the sampler had already spliced the
                        # patch: re-derive the sampler's state too.
                        self._resync_sampler()
                else:
                    self._learner_stale = True
        maybe_fire("engine.update.patched")
        marginals = self._sampler.estimate_marginals(
            cfg.inference_samples, burn_in=burn
        )
        maybe_fire("engine.update.inferred")
        if not cfg.reuse_compilation:
            # Baseline mode keeps the original throwaway lifecycle.
            if hasattr(self._sampler, "close"):
                self._sampler.close()
            self._sampler = None
            self._compiled = None
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        self._last_marginals = marginals
        return InferenceOutcome(
            marginals=marginals,
            strategy="rerun",
            seconds=time.perf_counter() - started,
        )

    def _resync_sampler(self) -> None:
        """Re-derive the persistent sampler after an external compaction.

        A pool-backed learner compacts the shared compilation when it
        exports it (or when a patch outgrows its segment); the sampler's
        cache/plan then index a layout that no longer exists.  The warm
        chain assignment is preserved — only derived state is rebuilt."""
        sampler = self._sampler
        if sampler is None:
            return
        from repro.graph.compiled import GibbsCache
        from repro.inference.gibbs import GibbsSampler

        if isinstance(sampler, GibbsSampler):
            sampler.plan = self._compiled.plan(sampler.graph)
            sampler.cache = GibbsCache(self._compiled, sampler.state)
            return
        # Sharded sampler: its worker pool is attached to a stale export;
        # rebuild it on the compacted compilation from the warm state.
        from repro.inference.parallel import ShardedGibbsSampler

        state = np.array(sampler.state, copy=True)
        if hasattr(sampler, "close"):
            sampler.close()
        self._sampler = ShardedGibbsSampler(
            self.current_graph,
            n_workers=self.config.n_workers,
            seed=self.rng,
            initial=state,
            compiled=self._compiled,
        )

    def relearn(self, num_epochs: int, record_loss: bool = True, **learner_kwargs):
        """Re-learn the weights of the current graph, persistently.

        Shares the engine's (patched) compilation with the learner when
        ``reuse_compilation`` is on, so after each ``apply_update`` the
        warm learner resumes with O(|Δ|) setup; under
        ``warm_learning=False`` (or ``reuse_compilation=False``) each
        call pays the cold restart the Fig. 16 baselines measure.
        Weight updates land in place and are picked up by the persistent
        sampler's version-gated weight refresh.

        Transactional (``EngineConfig.transactional``): a failure mid-fit
        restores the weight store, the learner's chains and the rng."""
        if self.config.transactional:
            snap = RelearnSnapshot(self)
            try:
                maybe_fire("engine.relearn.start")
                return self._relearn_inner(num_epochs, record_loss, learner_kwargs)
            except Exception:
                self.rollbacks += 1
                snap.restore()
                raise
        return self._relearn_inner(num_epochs, record_loss, learner_kwargs)

    def _relearn_inner(self, num_epochs, record_loss, learner_kwargs):
        cfg = self.config
        compiled = None
        if cfg.reuse_compilation:
            if self._compiled is None:
                from repro.graph.compiled import CompiledFactorGraph

                self._compiled = CompiledFactorGraph(self.current_graph)
            compiled = self._compiled
        return _relearn(self, compiled, num_epochs, record_loss, learner_kwargs)

    def close(self) -> None:
        """Release the persistent sampler (worker pool, shared memory)."""
        if self._sampler is not None and hasattr(self._sampler, "close"):
            self._sampler.close()
        self._sampler = None
        if self._learner is not None:
            self._learner.close()
            self._learner = None
        if self.wal is not None:
            self.wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
