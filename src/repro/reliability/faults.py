"""Deterministic fault-injection harness.

A :class:`FaultPlan` is a seeded list of :class:`Fault` specs, activated
with :func:`inject_faults`.  Instrumented code calls
:func:`maybe_fire(site, ...) <maybe_fire>` at named injection points; the
call is a no-op (one global read + ``None`` check) when no plan is
active, so production paths pay nothing.

Actions:

``raise``
    Raise :class:`FaultInjected` at the site (controller-side).
``kill``
    SIGKILL the target worker *before* the command is delivered
    (``pool.send`` only) — the worker never processes it.
``kill_after``
    Replace the command with a worker-side ``fault_exit`` that runs the
    original method and then ``os._exit``\\ s without replying — the
    deterministic "killed mid-sweep after publishing" scenario.
``drop``
    Swallow the outgoing message (``pool.send`` only); the command times
    out and recovery resends it.
``delay``
    Sleep ``fault.delay`` seconds at the site.
``corrupt``
    Scribble seeded random bytes over a shared-memory region named by
    ``fault.region`` (sites that pass an ``export`` in context), or over
    the middle of a file (sites that pass a ``path`` — e.g. the service's
    ``service.checkpoint.write``, simulating on-disk corruption).
``crash``
    Raise :class:`ProcessCrash` — a ``BaseException`` that no
    transactional ``except Exception`` handler can intercept, simulating
    SIGKILL mid-pipeline: rollback, retry and WAL-close paths all skip,
    leaving only the durable state behind.  The service's crash boundary
    (and tests) catch it explicitly.

All firing decisions are per-fault visit counters — no wall clock, no
process-level randomness — so a plan replays identically.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.reliability.errors import FaultInjected, ProcessCrash

#: Injection points instrumented across the stack.  Kept in one place so
#: tests can iterate over "every injection point, one at a time" — and so
#: :class:`FaultPlan` can reject a typo'd site at construction instead of
#: letting the fault silently never fire (a chaos test that injects at a
#: nonexistent site passes vacuously).
INJECTION_POINTS = (
    "pool.send",
    "pool.recv",
    "sharded.sweep.start",
    "engine.update.start",
    "engine.update.patched",
    "engine.update.inferred",
    "engine.relearn.start",
    "learn.epoch",
    "ground.update.start",
    "ground.update.finish",
    "service.queue.put",
    "service.batch.start",
    "service.batch.commit",
    "service.checkpoint.write",
    "service.read.start",
    "service.recover.start",
)

_ACTIONS = frozenset(
    {"raise", "kill", "kill_after", "drop", "delay", "corrupt", "crash"}
)


@dataclass
class Fault:
    """One planned failure.

    Fires on the ``at``-th matching visit (1-based) to ``site``; with
    ``repeat=True`` it keeps firing on every later visit too (used to
    model a persistently failing worker that forces degradation).
    ``worker`` / ``method`` narrow pool sites to one worker or command.
    """

    site: str
    action: str = "raise"
    at: int = 1
    repeat: bool = False
    worker: int | None = None
    method: str | None = None
    region: str | None = None
    delay: float = 0.02
    note: str = ""
    # Internal visit counter (matching visits seen so far).
    _visits: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")

    def matches(self, site: str, ctx: dict) -> bool:
        if site != self.site:
            return False
        if self.worker is not None and ctx.get("worker") != self.worker:
            return False
        if self.method is not None and ctx.get("method") != self.method:
            return False
        return True


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    ``fired`` records ``(site, action, context)`` tuples in firing order
    so tests can assert the plan actually triggered.
    """

    def __init__(self, faults, seed: int = 0, extra_sites=()) -> None:
        self.faults = [f if isinstance(f, Fault) else Fault(**f) for f in faults]
        known = set(INJECTION_POINTS) | set(extra_sites)
        unknown = sorted({f.site for f in self.faults} - known)
        if unknown:
            # An unknown site would silently never fire and the chaos
            # test around it would pass without testing anything.
            raise ValueError(
                f"unknown injection site(s) {unknown}; known sites: "
                f"{sorted(known)}"
            )
        self.rng = np.random.default_rng(seed)
        self.fired: list[tuple[str, str, dict]] = []

    def fire(self, site: str, **ctx):
        """Visit ``site``; return the triggered :class:`Fault` or None.

        ``raise``/``delay``/``corrupt`` actions are executed here (the
        caller needs no logic); ``kill``/``kill_after``/``drop`` are
        returned for the caller to enact, since they need pool internals.
        """
        for fault in self.faults:
            if not fault.matches(site, ctx):
                continue
            fault._visits += 1
            due = (
                fault._visits == fault.at
                or (fault.repeat and fault._visits > fault.at)
            )
            if not due:
                continue
            self.fired.append((site, fault.action, dict(ctx)))
            if fault.action == "raise":
                raise FaultInjected(site, fault.note)
            if fault.action == "crash":
                raise ProcessCrash(site, fault.note)
            if fault.action == "delay":
                time.sleep(fault.delay)
                return fault
            if fault.action == "corrupt":
                export = ctx.get("export")
                path = ctx.get("path")
                if export is not None:
                    self._corrupt(export, fault.region)
                elif path is not None:
                    self._corrupt_file(path)
                return fault
            return fault
        return None

    def _corrupt(self, export, region: str | None) -> None:
        """Overwrite one exported region with seeded garbage."""
        name = region if region is not None else "lit_var"
        view = export.array(name)
        raw = view.view(np.uint8).reshape(-1)
        if raw.size:
            raw[:] = self.rng.integers(0, 256, size=raw.size, dtype=np.uint8)

    def _corrupt_file(self, path) -> None:
        """Scribble seeded garbage over the middle of a file on disk."""
        size = os.path.getsize(path)
        if size == 0:
            return
        span = min(64, size)
        offset = int(self.rng.integers(0, max(size - span, 0) + 1))
        garbage = self.rng.integers(0, 256, size=span, dtype=np.uint8)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            fh.write(garbage.tobytes())

    def fired_sites(self) -> list[str]:
        return [site for site, _, _ in self.fired]


# --------------------------------------------------------------------- #
# Active-plan plumbing.

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def maybe_fire(site: str, **ctx):
    """Hook call placed at each injection point; no-op when inactive."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, **ctx)


@contextmanager
def inject_faults(plan: FaultPlan):
    """Activate ``plan`` for the duration of the block (controller side).

    Worker processes forked while a plan is active inherit the module
    global, but all hooks live on controller-side code paths, so faults
    only ever fire in the driving process.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
