"""Sequential-scan Gibbs sampling (the paper's inference workhorse, §2.5).

Each sweep visits every free variable once and resamples it from its
conditional, which :class:`~repro.graph.compiled.GibbsCache` evaluates in
O(degree).  Evidence variables stay clamped, which is exactly how the
E-step ("conditioned chain") of weight learning is run as well.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.compiled import CompiledFactorGraph, GibbsCache
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class GibbsSampler:
    """Markov-chain Gibbs sampler over a factor graph.

    Parameters
    ----------
    graph:
        Factor graph (or an already compiled view via ``compiled=``).
    seed:
        RNG seed / generator.
    initial:
        Optional starting world; defaults to random consistent with
        evidence.
    randomize_scan:
        When True, each sweep visits free variables in a fresh random
        order; when False (default) in id order.  Random scan mixes
        slightly better on adversarial structures; id order is faster.
    """

    def __init__(
        self,
        graph: FactorGraph,
        seed=None,
        initial=None,
        randomize_scan: bool = False,
        compiled: CompiledFactorGraph | None = None,
    ) -> None:
        self.graph = graph
        self.compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        self.rng = as_generator(seed)
        self.randomize_scan = randomize_scan
        if initial is None:
            self.state = graph.initial_assignment(self.rng)
        else:
            self.state = np.array(initial, dtype=bool)
            for var, value in graph.evidence.items():
                self.state[var] = value
        self.cache = GibbsCache(self.compiled, self.state)
        self.sweeps_done = 0

    # ------------------------------------------------------------------ #

    def sweep(self) -> None:
        """One full pass over the free variables."""
        order = self.compiled.free_vars
        if self.randomize_scan:
            order = self.rng.permutation(order)
        uniforms = self.rng.random(len(order))
        state = self.state
        cache = self.cache
        for u, var in zip(uniforms, order):
            delta = cache.delta_energy(var, state)
            p_true = _sigmoid(delta)
            new_value = u < p_true
            if new_value != state[var]:
                cache.commit_flip(var, new_value, state)
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> np.ndarray:
        """Run ``num_sweeps`` sweeps; returns the final state (a view)."""
        for _ in range(num_sweeps):
            self.sweep()
        return self.state

    def sample_worlds(self, num_samples: int, thin: int = 1, burn_in: int = 0) -> np.ndarray:
        """Collect ``num_samples`` worlds, one per ``thin`` sweeps.

        Returns a ``(num_samples, num_vars)`` boolean matrix — the "tuple
        bundle" stored by the sampling materialization approach (one bit
        per variable per sample, as in MCDB).
        """
        for _ in range(burn_in):
            self.sweep()
        out = np.empty((num_samples, self.graph.num_vars), dtype=bool)
        for s in range(num_samples):
            for _ in range(thin):
                self.sweep()
            out[s] = self.state
        return out

    def estimate_marginals(
        self, num_samples: int, thin: int = 1, burn_in: int = 0
    ) -> np.ndarray:
        """Monte-Carlo marginal estimates P(X_v = 1)."""
        worlds = self.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        return worlds.mean(axis=0)

    def conditional_probability(self, var: int) -> float:
        """P(X_var = 1 | rest of current state) — exposed for tests."""
        return _sigmoid(self.cache.delta_energy(var, self.state))
