"""Tests for the exact enumeration oracle."""

import math

import numpy as np
import pytest

from repro.graph import FactorGraph, Semantics
from repro.inference import ExactInference

from tests.helpers import single_bias_graph, voting_graph


def sigmoid(z):
    return 1.0 / (1.0 + math.exp(-z))


class TestExactInference:
    def test_single_bias_marginal(self):
        fg = single_bias_graph(weight=0.7)
        exact = ExactInference(fg)
        # P(x=1) = e^w / (e^w + e^-w) = sigmoid(2w)
        assert exact.marginal(0) == pytest.approx(sigmoid(1.4))

    def test_distribution_sums_to_one(self):
        fg = voting_graph(2, 2)
        exact = ExactInference(fg)
        assert exact.distribution().sum() == pytest.approx(1.0)

    def test_evidence_clamps_marginal(self):
        fg = single_bias_graph(weight=-3.0)
        fg.set_evidence(0, True)
        exact = ExactInference(fg)
        assert exact.marginal(0) == pytest.approx(1.0)

    def test_voting_closed_form(self):
        """Pr[q] = e^W/(e^W + e^-W) with W = g(|Up|) − g(|Down|) (Ex. 2.5)."""
        for sem, g in [
            (Semantics.LINEAR, lambda n: n),
            (Semantics.RATIO, lambda n: math.log1p(n)),
            (Semantics.LOGICAL, lambda n: 1.0 if n else 0.0),
        ]:
            fg = voting_graph(3, 1, semantics=sem, clamp_voters=True)
            exact = ExactInference(fg)
            w = g(3) - g(1)
            expected = math.exp(w) / (math.exp(w) + math.exp(-w))
            assert exact.marginal(0) == pytest.approx(expected), sem

    def test_logical_semantics_ignores_vote_strength(self):
        """Ex. 2.5: logical gives exactly 0.5 whenever both sides non-empty."""
        for up, down in [(1, 1), (5, 1), (100, 3)]:
            fg = voting_graph(up, down, semantics=Semantics.LOGICAL, clamp_voters=True)
            assert ExactInference(fg).marginal(0) == pytest.approx(0.5)

    def test_linear_semantics_sharpens_with_margin(self):
        """Ex. 2.5: linear semantics saturates with the raw vote margin."""
        fg = voting_graph(8, 4, semantics=Semantics.LINEAR, clamp_voters=True)
        p_linear = ExactInference(fg).marginal(0)
        fg = voting_graph(8, 4, semantics=Semantics.RATIO, clamp_voters=True)
        p_ratio = ExactInference(fg).marginal(0)
        assert p_linear > 0.999
        assert 0.5 < p_ratio < p_linear

    def test_world_log_prob_consistency(self):
        fg = voting_graph(2, 1)
        exact = ExactInference(fg)
        total = sum(
            math.exp(exact.world_log_prob(world)) for world in exact.worlds
        )
        assert total == pytest.approx(1.0)

    def test_world_log_prob_rejects_evidence_violation(self):
        fg = single_bias_graph()
        fg.set_evidence(0, True)
        exact = ExactInference(fg)
        assert exact.world_log_prob(np.array([False])) == float("-inf")

    def test_pairwise_marginal(self):
        fg = FactorGraph()
        i = fg.add_variable()
        j = fg.add_variable()
        wid = fg.weights.intern("J", initial=2.0)
        fg.add_ising_factor(wid, i, j)
        exact = ExactInference(fg)
        # Strong positive coupling: mass concentrates on agreement.
        assert exact.pairwise_marginal(i, j) == pytest.approx(
            math.exp(2) / (2 * math.exp(2) + 2 * math.exp(-2))
        )

    def test_covariance_positive_for_coupled_pair(self):
        fg = FactorGraph()
        i = fg.add_variable()
        j = fg.add_variable()
        wid = fg.weights.intern("J", initial=1.0)
        fg.add_ising_factor(wid, i, j)
        cov = ExactInference(fg).covariance_matrix()
        assert cov[0, 1] > 0.1
        assert cov[0, 0] == pytest.approx(0.25)  # marginal is 0.5

    def test_refuses_oversized_graph(self):
        fg = FactorGraph()
        fg.add_variables(30)
        with pytest.raises(ValueError):
            ExactInference(fg)
