"""§1/§4.2: incremental grounding speedup (paper: up to 360×).

A small document batch arrives; DRed-style delta propagation touches
only the changed tuples, while a full reground re-evaluates every join.
Expected shape: the speedup grows with corpus size at a fixed update
size.
"""

import time

from _helpers import emit, once

from repro.grounding import Grounder, IncrementalGrounder
from repro.util.tables import format_table
from repro.workloads import build_pipeline, workload_by_name


def _experiment() -> str:
    rows = []
    for scale in (0.5, 1.0, 2.0, 4.0):
        pipeline = build_pipeline(workload_by_name("news"), scale=scale, seed=0)
        grounder = pipeline.build_base()
        for _label, update in pipeline.snapshot_updates():
            grounder.apply_update(**update)

        # The update: one new document's worth of rows.
        sid = "new_doc_s0"
        inserts = {
            "MentionInSentence": [(sid, "new_m1"), (sid, "new_m2")],
            "CuePhrase": [(sid, "and_his_wife")],
            "SentenceContext": [(sid, "the")],
            "EL": [("new_m1", "ent0"), ("new_m2", "ent1")],
        }
        t0 = time.perf_counter()
        grounder.apply_update(inserts=inserts)
        incremental_s = time.perf_counter() - t0

        # Full reground: fresh database seeded with the base relations
        # only (derived relations are recomputed from scratch).
        fresh_db = grounder.program.create_database()
        for name in grounder.program.base_relations():
            relation = grounder.db.relation(name)
            for row, count in relation.counts().items():
                fresh_db.relation(name).insert(row, count)
        t0 = time.perf_counter()
        Grounder(grounder.program, fresh_db).ground()
        full_s = time.perf_counter() - t0

        rows.append(
            [
                f"{scale:.1f}",
                grounder.graph.num_vars,
                grounder.graph.num_factors,
                f"{full_s:.3f}",
                f"{incremental_s:.4f}",
                f"{full_s / max(incremental_s, 1e-9):.0f}x",
            ]
        )
    return format_table(
        ["corpus scale", "#vars", "#factors", "full reground s",
         "incremental s", "speedup"],
        rows,
        title="Incremental grounding, one-document update (paper: up to 360x)",
    )


def test_grounding_incremental(benchmark):
    emit("grounding_incremental", once(benchmark, _experiment))
