"""Shared test fixtures: small factor graphs with known behaviour."""

from __future__ import annotations

import numpy as np

from repro.graph import FactorGraph, Semantics


def single_bias_graph(weight: float = 0.7) -> FactorGraph:
    """One free variable with a bias factor; P(X=1) = sigmoid(2w)."""
    fg = FactorGraph()
    v = fg.add_variable(name="x")
    wid = fg.weights.intern("bias", initial=weight)
    fg.add_bias_factor(wid, v)
    return fg


def chain_ising_graph(n: int = 5, coupling: float = 0.5, bias: float = 0.2) -> FactorGraph:
    """A 1-D Ising chain with uniform coupling and bias."""
    fg = FactorGraph()
    variables = [fg.add_variable(name=f"x{i}") for i in range(n)]
    w_couple = fg.weights.intern("couple", initial=coupling)
    w_bias = fg.weights.intern("bias", initial=bias)
    for i in range(n - 1):
        fg.add_ising_factor(w_couple, variables[i], variables[i + 1])
    for v in variables:
        fg.add_bias_factor(w_bias, v)
    return fg


def voting_graph(
    num_up: int = 3,
    num_down: int = 3,
    semantics=Semantics.RATIO,
    weight: float = 1.0,
    voter_bias: float = 0.0,
    clamp_voters: bool = False,
) -> FactorGraph:
    """Example 2.5's voting program.

    Query variable ``q`` (id 0) plus ``num_up`` Up voters and ``num_down``
    Down voters.  Two rule factors: ``q :- Up(x)`` with weight ``+w`` and
    ``q :- Down(x)`` with weight ``−w``.
    """
    fg = FactorGraph()
    q = fg.add_variable(name="q")
    ups = [
        fg.add_variable(name=f"up{i}", evidence=True if clamp_voters else None)
        for i in range(num_up)
    ]
    downs = [
        fg.add_variable(name=f"down{i}", evidence=True if clamp_voters else None)
        for i in range(num_down)
    ]
    w_up = fg.weights.intern("up", initial=weight)
    w_down = fg.weights.intern("down", initial=-weight)
    if ups:
        fg.add_rule_factor(w_up, q, [[(u, True)] for u in ups], semantics)
    if downs:
        fg.add_rule_factor(w_down, q, [[(d, True)] for d in downs], semantics)
    if voter_bias and not clamp_voters:
        wb = fg.weights.intern("voter_bias", initial=voter_bias)
        for v in ups + downs:
            fg.add_bias_factor(wb, v)
    return fg


def random_pairwise_graph(
    n: int,
    density: float = 0.3,
    weight_range: float = 0.5,
    seed: int = 0,
) -> FactorGraph:
    """A random Ising graph in the style of the §3.2.4 synthetic study."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    variables = [fg.add_variable() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                w = rng.uniform(-weight_range, weight_range)
                wid = fg.weights.intern(("J", i, j), initial=w)
                fg.add_ising_factor(wid, variables[i], variables[j])
    for v in variables:
        w = rng.uniform(-weight_range, weight_range)
        wid = fg.weights.intern(("h", v), initial=w)
        fg.add_bias_factor(wid, v)
    return fg


def implication_graph(semantics=Semantics.LOGICAL) -> FactorGraph:
    """q :- a, b with two groundings sharing variable b.

    Groundings: (a ∧ b) and (c ∧ b).  Useful for exercising the grounding
    count cache.
    """
    fg = FactorGraph()
    q = fg.add_variable(name="q")
    a = fg.add_variable(name="a")
    b = fg.add_variable(name="b")
    c = fg.add_variable(name="c")
    wid = fg.weights.intern("rule", initial=0.8)
    fg.add_rule_factor(
        wid, q, [[(a, True), (b, True)], [(c, True), (b, True)]], semantics
    )
    return fg
