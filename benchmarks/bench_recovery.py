"""Fault-recovery latency: supervised respawn, rollback+retry, degradation.

A deployed KBC system's update loop (§1) is only as good as its worst
failure: a hung sampler worker or a crash mid-update used to mean a lost
run.  The reliability layer bounds those costs; this benchmark measures
what they are:

* ``recovery`` — a shard worker is SIGKILLed mid-sweep; the sampler
  detects the death, respawns the worker from the shared export + patch
  log, replays its shard session, and resends the lost sweep.  Reported
  against the cost of a *cold restart* (rebuilding the whole sharded
  sampler from the graph), which is what recovery replaces.
* ``rollback`` — a fault injected inside ``RerunEngine.apply_update``
  triggers the transactional rollback; reported per delta size as the
  rollback (failed-call) cost and the retry cost vs a clean update.
  Rollback work is O(touched state), so it should track the clean
  update, not the graph.
* ``degradation`` — per-sweep cost of the serial kernel a persistently
  failing pool degrades to, vs the healthy sharded per-sweep cost: the
  price of continuing at all.

``--check`` runs the CI chaos smoke instead: a seeded kill-mid-sweep
must recover to **bit-identical** chain state within the command
timeout, and a seeded engine fault must roll back and retry to the
never-faulted twin's marginals.

Run: ``PYTHONPATH=src python benchmarks/bench_recovery.py
[--scale tiny|small|medium] [--check]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import EngineConfig, RerunEngine
from repro.graph import FactorGraph, FactorGraphDelta
from repro.graph.factor_graph import IsingFactor
from repro.inference.parallel import ShardedGibbsSampler
from repro.reliability import Fault, FaultInjected, FaultPlan, RetryPolicy, inject_faults

from _helpers import emit_json

SCALES = {
    "tiny": {"num_vars": 300, "n_workers": 2, "sweeps": 6, "delta_sizes": [1, 8]},
    "small": {
        "num_vars": 1500,
        "n_workers": 2,
        "sweeps": 10,
        "delta_sizes": [1, 16, 64],
    },
    "medium": {
        "num_vars": 6000,
        "n_workers": 4,
        "sweeps": 10,
        "delta_sizes": [1, 32, 256],
    },
}

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


def build_graph(num_vars: int, seed: int = 0) -> FactorGraph:
    """Random Ising graph with biases (§3.2.4 style)."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    fg.add_variables(num_vars)
    for k in range(num_vars * 2):
        i, j = int(rng.integers(num_vars)), int(rng.integers(num_vars))
        if i == j:
            continue
        wid = fg.weights.intern(("J", k), initial=float(rng.normal(0, 0.3)))
        fg.add_ising_factor(wid, i, j)
    bias = fg.weights.intern("h", initial=0.1)
    for v in range(num_vars):
        fg.add_bias_factor(bias, v)
    return fg


def make_delta(graph: FactorGraph, size: int, rng, step: int) -> FactorGraphDelta:
    delta = FactorGraphDelta()
    n = graph.num_vars
    nw = len(graph.weights)
    delta.new_weight_entries.append((("upd", step), float(rng.normal(0, 0.3)), False))
    for _ in range(size):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i == j:
            j = (j + 1) % n
        delta.new_factors.append(IsingFactor(weight_id=nw, i=i, j=j))
    return delta


# --------------------------------------------------------------------- #


def measure_recovery(num_vars: int, n_workers: int, sweeps: int) -> dict:
    """Kill-mid-sweep recovery latency vs cold sampler restart."""
    graph = build_graph(num_vars)
    sampler = ShardedGibbsSampler(
        graph, n_workers=n_workers, seed=0, command_timeout=60.0, retry=FAST_RETRY
    )
    # Warm sweeps establish the healthy per-sweep baseline.
    normals = []
    for _ in range(sweeps):
        start = time.perf_counter()
        sampler.sweep()
        normals.append(time.perf_counter() - start)
    plan = FaultPlan(
        [Fault(site="pool.send", action="kill", method="shard_sweep", worker=0, at=1)]
    )
    with inject_faults(plan):
        start = time.perf_counter()
        sampler.sweep()  # detection + respawn + session replay + resend
        recovery_sweep = time.perf_counter() - start
    respawns = sampler.total_respawns
    sampler.close()
    # The alternative recovery strategy: throw the sampler away and
    # rebuild it from the graph (what a crash used to force).
    start = time.perf_counter()
    cold = ShardedGibbsSampler(graph, n_workers=n_workers, seed=0)
    cold.sweep()
    cold_restart = time.perf_counter() - start
    cold.close()
    return {
        "num_vars": num_vars,
        "n_workers": n_workers,
        "normal_sweep_seconds": float(np.median(normals)),
        "recovery_sweep_seconds": recovery_sweep,
        "recovery_overhead_seconds": recovery_sweep - float(np.median(normals)),
        "cold_restart_seconds": cold_restart,
        "respawns": respawns,
    }


def measure_rollback(num_vars: int, delta_sizes: list) -> list:
    """Transactional rollback + retry cost vs clean update, per |Δ|."""
    rows = []
    for size in delta_sizes:
        graph = build_graph(num_vars)
        engine = RerunEngine(
            graph,
            EngineConfig(inference_samples=3, burn_in=2, incremental_burn_in=2, seed=0),
        )
        engine.apply_update(FactorGraphDelta())  # prime the compile
        rng = np.random.default_rng(7)
        start = time.perf_counter()
        engine.apply_update(make_delta(engine.current_graph, size, rng, 0))
        clean = time.perf_counter() - start
        delta = make_delta(engine.current_graph, size, rng, 1)
        with inject_faults(FaultPlan([Fault(site="engine.update.inferred")])):
            start = time.perf_counter()
            try:
                engine.apply_update(delta)
            except FaultInjected:
                pass
            rollback = time.perf_counter() - start
        start = time.perf_counter()
        engine.apply_update(delta)
        retry = time.perf_counter() - start
        engine.close()
        rows.append(
            {
                "num_vars": num_vars,
                "delta_size": size,
                "clean_update_seconds": clean,
                "rollback_seconds": rollback,
                "retry_seconds": retry,
                "rollbacks": 1,
            }
        )
    return rows


def measure_degradation(num_vars: int, n_workers: int, sweeps: int) -> dict:
    """Serial-kernel per-sweep cost after degradation vs healthy sharded."""
    graph = build_graph(num_vars)
    sampler = ShardedGibbsSampler(
        graph, n_workers=n_workers, seed=0, command_timeout=60.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001),
    )
    parallel = []
    for _ in range(sweeps):
        start = time.perf_counter()
        sampler.sweep()
        parallel.append(time.perf_counter() - start)
    plan = FaultPlan(
        [
            Fault(
                site="pool.send",
                action="kill",
                method="shard_sweep",
                worker=0,
                at=1,
                repeat=True,
            )
        ]
    )
    with inject_faults(plan):
        sampler.sweep()  # exhausts the retry policy, degrades to serial
    assert sampler.degradations == 1
    serial = []
    for _ in range(sweeps):
        start = time.perf_counter()
        sampler.sweep()
        serial.append(time.perf_counter() - start)
    sampler.close()
    return {
        "num_vars": num_vars,
        "n_workers": n_workers,
        "parallel_sweep_seconds": float(np.median(parallel)),
        "degraded_serial_sweep_seconds": float(np.median(serial)),
        "slowdown": float(np.median(serial) / max(np.median(parallel), 1e-9)),
    }


def run(scale: str) -> dict:
    cfg = SCALES[scale]
    record = {"scale": scale}
    rec = measure_recovery(cfg["num_vars"], cfg["n_workers"], cfg["sweeps"])
    record["recovery"] = rec
    print(
        f"recovery n={rec['num_vars']}: sweep {rec['normal_sweep_seconds'] * 1e3:.1f} ms, "
        f"with kill+respawn {rec['recovery_sweep_seconds'] * 1e3:.1f} ms, "
        f"cold restart {rec['cold_restart_seconds'] * 1e3:.1f} ms"
    )
    record["rollback"] = measure_rollback(cfg["num_vars"], cfg["delta_sizes"])
    for row in record["rollback"]:
        print(
            f"rollback |Δ|={row['delta_size']:>4}: clean {row['clean_update_seconds'] * 1e3:.1f} ms, "
            f"rollback {row['rollback_seconds'] * 1e3:.1f} ms, "
            f"retry {row['retry_seconds'] * 1e3:.1f} ms"
        )
    deg = measure_degradation(cfg["num_vars"], cfg["n_workers"], cfg["sweeps"])
    record["degradation"] = deg
    print(
        f"degradation n={deg['num_vars']}: parallel sweep "
        f"{deg['parallel_sweep_seconds'] * 1e3:.1f} ms → serial "
        f"{deg['degraded_serial_sweep_seconds'] * 1e3:.1f} ms "
        f"({deg['slowdown']:.2f}x)"
    )
    return record


def check() -> None:
    """CI chaos smoke: seeded kill recovers bit-exactly; engine fault
    rolls back and retries to the never-faulted twin's marginals."""
    graph = build_graph(120, seed=3)
    baseline = ShardedGibbsSampler(graph, n_workers=2, seed=5)
    base_state = baseline.run(4).copy()
    baseline.close()
    plan = FaultPlan(
        [Fault(site="pool.send", action="kill", method="shard_sweep", worker=0, at=2)]
    )
    sampler = ShardedGibbsSampler(
        graph, n_workers=2, seed=5, command_timeout=60.0, retry=FAST_RETRY
    )
    start = time.perf_counter()
    with inject_faults(plan):
        state = sampler.run(4).copy()
    elapsed = time.perf_counter() - start
    assert sampler.total_respawns == 1, "kill did not trigger a respawn"
    assert np.array_equal(state, base_state), "recovered chain diverged"
    assert elapsed < 60.0, f"recovery exceeded the command timeout ({elapsed:.1f}s)"
    sampler.close()

    cfg = EngineConfig(inference_samples=20, burn_in=5, incremental_burn_in=5, seed=0)
    faulted = RerunEngine(build_graph(60, seed=1), cfg)
    twin = RerunEngine(build_graph(60, seed=1), cfg)
    rng = np.random.default_rng(2)
    delta_f = make_delta(faulted.current_graph, 4, rng, 0)
    rng = np.random.default_rng(2)
    delta_t = make_delta(twin.current_graph, 4, rng, 0)
    with inject_faults(FaultPlan([Fault(site="engine.update.patched")])):
        try:
            faulted.apply_update(delta_f)
            raise AssertionError("fault did not fire")
        except FaultInjected:
            pass
    assert faulted.rollbacks == 1
    out_retry = faulted.apply_update(delta_f)
    out_twin = twin.apply_update(delta_t)
    assert np.array_equal(out_retry.marginals, out_twin.marginals), (
        "rolled-back engine diverged from never-faulted twin"
    )
    faulted.close()
    twin.close()
    print("recovery smoke ok: kill→respawn bit-exact, rollback→retry twin-exact")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the chaos smoke assertions only",
    )
    args = parser.parse_args()
    if args.check:
        check()
        return
    record = run(args.scale)
    emit_json("BENCH_recovery", record)


if __name__ == "__main__":
    main()
