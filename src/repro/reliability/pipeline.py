"""WAL-backed ground → infer → relearn update pipeline.

:class:`ReliableUpdatePipeline` strings an
:class:`~repro.grounding.incremental.IncrementalGrounder` and an engine
(Incremental or Rerun) together under a :class:`DeltaLog`: every update
is logged *before* it runs, retried under a :class:`RetryPolicy`, and
committed only once inference (and optional relearning) succeeded.  The
engines' own transactional ``apply_update``/``relearn`` guarantee that a
failed attempt rolls the engine back to its pre-update state, so a retry
starts clean.

Grounding is **not** re-run on retry when it already completed: the
grounder stashes ``last_result`` before its ``ground.update.finish``
injection point, and the pipeline compares that marker across attempts —
relation deltas are not idempotent, so re-grounding a grounded update
would double-apply them.  (A failure *inside* grounding is only safe to
retry when nothing was mutated yet, i.e. at ``ground.update.start``;
mid-grounding crash atomicity is out of scope, matching the harness's
injection points.)

After a crash, :meth:`DeltaLog.pending` names the updates that began but
never committed, and :meth:`replay` re-applies the committed history
onto a fresh grounder/engine pair.
"""

from __future__ import annotations

from repro.reliability.retry import RetryPolicy
from repro.reliability.wal import DeltaLog


def replay_payload(grounder, engine, payload):
    """Re-apply one logged update payload onto a grounder/engine pair.

    The WAL payload records the *inputs* of an update (relation rows,
    rule changes, relearn epochs); re-grounding them reproduces the delta
    and the engine's marginals deterministically.  Shared by
    :meth:`ReliableUpdatePipeline.replay` (full-history replay onto a
    fresh stack) and the service's checkpoint recovery (tail replay onto
    a restored stack)."""
    kwargs = {
        k: v
        for k, v in payload.items()
        if k not in ("relearn_epochs",) and v is not None
    }
    result = grounder.apply_update(**kwargs)
    outcome = engine.apply_update(result.delta)
    if payload.get("relearn_epochs"):
        engine.relearn(payload["relearn_epochs"], record_loss=False)
    return outcome


class ReliableUpdatePipeline:
    """Transactional driver for one grounder + one engine."""

    def __init__(self, grounder, engine, wal: DeltaLog | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self.grounder = grounder
        self.engine = engine
        self.wal = wal if wal is not None else DeltaLog()
        self.retry = retry if retry is not None else RetryPolicy()
        self.updates = 0
        self.retries = 0
        self.rollbacks = 0
        self.regrounds_skipped = 0
        #: Transaction id of the most recently committed update — the
        #: staleness stamp the service attaches to read snapshots.
        self.last_txn = 0

    def apply_update(
        self,
        inserts: dict | None = None,
        deletes: dict | None = None,
        relearn_epochs: int = 0,
        **ground_kwargs,
    ):
        """One logged, retried, committed development iteration.

        Returns the engine's :class:`InferenceOutcome`.  On unrecoverable
        failure the transaction is rolled back in the WAL (the engine has
        already rolled itself back) and the final exception re-raises."""
        payload = {
            "inserts": inserts,
            "deletes": deletes,
            "relearn_epochs": relearn_epochs,
            **ground_kwargs,
        }
        txn = self.wal.begin(payload)
        marker = self.grounder.last_result
        grounded = {"result": None}
        inferred = {"outcome": None}

        def attempt(n):
            if n > 1:
                self.retries += 1
            if grounded["result"] is None:
                if self.grounder.last_result is not marker:
                    # A prior attempt finished grounding, then failed
                    # downstream: resume from the stashed result.
                    grounded["result"] = self.grounder.last_result
                    self.regrounds_skipped += 1
                else:
                    grounded["result"] = self.grounder.apply_update(
                        inserts=inserts, deletes=deletes, **ground_kwargs
                    )
                self.wal.mark(txn, "grounded", grounded["result"].summary)
            if inferred["outcome"] is None:
                # A failed apply_update rolled the engine back, so re-running
                # it is safe; a *committed* one must not run again — the
                # delta is relative to the pre-update graph, and the engine
                # already holds the post-update state.  A later relearn
                # failure therefore retries only the relearn.
                inferred["outcome"] = self.engine.apply_update(
                    grounded["result"].delta
                )
                self.wal.mark(txn, "inferred")
            if relearn_epochs:
                self.engine.relearn(relearn_epochs, record_loss=False)
                self.wal.mark(txn, "relearned")
            return inferred["outcome"]

        try:
            outcome = self.retry.call(attempt)
        except Exception as exc:
            self.rollbacks += 1
            self.wal.rollback(txn, reason=repr(exc))
            raise
        self.wal.commit(txn)
        self.updates += 1
        self.last_txn = txn
        return outcome

    # ------------------------------------------------------------------ #

    def replay(self, grounder, engine) -> list:
        """Re-apply the committed history onto a fresh grounder/engine.

        The WAL payload records the *inputs* of each update (relation
        rows, rule changes), so replay reproduces the grounding and the
        engine's marginals on a rebuilt stack — the crash-recovery path
        for a persisted :class:`DeltaLog`."""
        outcomes = []
        for _txn, payload in self.wal.committed():
            outcomes.append(replay_payload(grounder, engine, payload))
        return outcomes

    def pending(self) -> list:
        """Updates that began but never committed (crash recovery)."""
        return self.wal.pending()
