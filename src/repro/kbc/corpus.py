"""Synthetic corpus generation (the paper's document collections).

A corpus is a set of documents; each sentence mentions two entities with
a connecting phrase.  Whether the phrase is a *positive cue* ("and his
wife") correlates with whether the entity pair is in the gold KB, with
per-workload reliability; noise knobs reproduce the quality spectrum of
§4.1 (Adversarial: 1–2 garbled sentences per ad; Paleontology: precise
curated prose).

``SpamStream`` generates the drifting classification stream of the
concept-drift study (App. B.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import as_generator

POSITIVE_CUES = [
    "and_his_wife",
    "married_to",
    "wed",
    "spouse_of",
    "tied_the_knot_with",
]
NEGATIVE_CUES = [
    "met_with",
    "spoke_to",
    "brother_of",
    "colleague_of",
    "rival_of",
    "employed_by",
]
FILLER = ["the", "a", "report", "today", "officials", "said", "in", "city"]


def canonical_pair(e1: str, e2: str) -> tuple:
    """The unordered form of an entity pair (used everywhere pairs are
    compared: gold KB, supervision, extraction scoring)."""
    return (e1, e2) if e1 <= e2 else (e2, e1)


@dataclass(frozen=True)
class Mention:
    """A span of text referring to an entity (paper §2.1)."""

    mention_id: str
    sentence_id: str
    surface: str
    entity_id: str  # ground truth; entity linking may err


@dataclass(frozen=True)
class Sentence:
    sentence_id: str
    doc_id: str
    tokens: tuple
    mentions: tuple
    cue: str
    cue_position: int


@dataclass(frozen=True)
class Document:
    doc_id: str
    sentences: tuple


@dataclass
class CorpusConfig:
    """Generation knobs; per-workload values live in ``repro.workloads``."""

    name: str = "corpus"
    num_docs: int = 60
    sentences_per_doc: int = 3
    num_entities: int = 30
    gold_pair_fraction: float = 0.3
    #: Probability a sentence is about a gold pair (related entities are
    #: mentioned together far more often than random pairs would be).
    related_sentence_prob: float = 0.35
    cue_reliability: float = 0.85
    noise_level: float = 0.0
    linking_noise: float = 0.0
    filler_tokens: int = 2
    num_relations: int = 1
    seed: int = 0


@dataclass
class Corpus:
    config: CorpusConfig
    documents: tuple
    entities: tuple
    gold_pairs: set = field(default_factory=set)

    def sentences(self):
        for doc in self.documents:
            yield from doc.sentences

    def all_mentions(self):
        for sentence in self.sentences():
            yield from sentence.mentions

    def stats(self) -> dict:
        num_sentences = sum(len(d.sentences) for d in self.documents)
        return {
            "name": self.config.name,
            "docs": len(self.documents),
            "sentences": num_sentences,
            "entities": len(self.entities),
            "gold_pairs": len(self.gold_pairs),
            "relations": self.config.num_relations,
        }


def _corrupt(token: str, rng) -> str:
    """Adversarial-style corruption: drop or swap characters."""
    if len(token) < 3:
        return token + "x"
    cut = int(rng.integers(1, len(token)))
    return token[:cut] + token[cut + 1 :]


def generate_corpus(config: CorpusConfig) -> Corpus:
    """Generate a corpus plus its gold KB."""
    rng = as_generator(config.seed)
    entities = tuple(f"ent{idx}" for idx in range(config.num_entities))

    # Gold KB: unordered related pairs.
    gold_pairs: set = set()
    num_gold = max(1, int(config.gold_pair_fraction * config.num_entities))
    while len(gold_pairs) < num_gold:
        i, j = rng.choice(config.num_entities, size=2, replace=False)
        gold_pairs.add(canonical_pair(entities[int(i)], entities[int(j)]))

    documents = []
    mention_counter = 0
    for d in range(config.num_docs):
        doc_id = f"d{d}"
        sentences = []
        for s in range(config.sentences_per_doc):
            sentence_id = f"{doc_id}_s{s}"
            if gold_pairs and rng.random() < config.related_sentence_prob:
                pair_list = sorted(gold_pairs)
                e1, e2 = pair_list[int(rng.integers(len(pair_list)))]
                if rng.random() < 0.5:
                    e1, e2 = e2, e1
            else:
                i, j = rng.choice(config.num_entities, size=2, replace=False)
                e1, e2 = entities[i], entities[j]
            related = canonical_pair(e1, e2) in gold_pairs
            use_positive = (
                rng.random() < config.cue_reliability
                if related
                else rng.random() > config.cue_reliability
            )
            cue_pool = POSITIVE_CUES if use_positive else NEGATIVE_CUES
            cue = cue_pool[int(rng.integers(len(cue_pool)))]

            surface1 = _surface(e1, entities, config, rng)
            surface2 = _surface(e2, entities, config, rng)
            prefix = [
                FILLER[int(rng.integers(len(FILLER)))]
                for _ in range(config.filler_tokens)
            ]
            tokens = prefix + [surface1, cue, surface2]
            if config.noise_level > 0:
                tokens = [
                    _corrupt(t, rng) if rng.random() < config.noise_level else t
                    for t in tokens
                ]
                cue = tokens[len(prefix) + 1]
            m1 = Mention(
                mention_id=f"m{mention_counter}",
                sentence_id=sentence_id,
                surface=tokens[len(prefix)],
                entity_id=e1,
            )
            m2 = Mention(
                mention_id=f"m{mention_counter + 1}",
                sentence_id=sentence_id,
                surface=tokens[len(prefix) + 2],
                entity_id=e2,
            )
            mention_counter += 2
            sentences.append(
                Sentence(
                    sentence_id=sentence_id,
                    doc_id=doc_id,
                    tokens=tuple(tokens),
                    mentions=(m1, m2),
                    cue=cue,
                    cue_position=len(prefix) + 1,
                )
            )
        documents.append(Document(doc_id=doc_id, sentences=tuple(sentences)))
    return Corpus(
        config=config,
        documents=tuple(documents),
        entities=entities,
        gold_pairs=gold_pairs,
    )


def _surface(entity: str, entities, config: CorpusConfig, rng) -> str:
    """The mention's surface form; linking noise aliases another entity."""
    if config.linking_noise > 0 and rng.random() < config.linking_noise:
        return entities[int(rng.integers(len(entities)))]
    return entity


class SpamStream:
    """Drifting binary text-classification stream (App. B.4, Fig. 17).

    Emails are bags of word-features; the label depends on "spammy"
    vocabulary.  After ``drift_point`` (a fraction of the stream) the
    spam vocabulary rotates — an abrupt concept drift like the dataset of
    Katakis et al. used in the paper.
    """

    def __init__(
        self,
        num_emails: int = 2000,
        vocabulary_size: int = 120,
        words_per_email: int = 12,
        drift_point: float = 0.25,
        seed: int = 0,
    ) -> None:
        rng = as_generator(seed)
        self.vocabulary_size = vocabulary_size
        spam_size = vocabulary_size // 6
        spam_a = rng.choice(vocabulary_size, size=spam_size, replace=False)
        # The drifted vocabulary keeps half of the old spam words and
        # rotates in fresh ones — a partial, abrupt drift (warmstart
        # remains partially useful, as in the paper's study).
        keep = spam_a[: spam_size // 2]
        others = np.setdiff1d(np.arange(vocabulary_size), spam_a)
        fresh = rng.choice(others, size=spam_size - len(keep), replace=False)
        spam_b = np.concatenate([keep, fresh])
        features, labels = [], []
        for idx in range(num_emails):
            drifted = idx >= drift_point * num_emails
            spam_words = spam_b if drifted else spam_a
            words = rng.choice(vocabulary_size, size=words_per_email, replace=False)
            spam_score = np.isin(words, spam_words).sum()
            label = spam_score >= 2
            features.append([int(w) for w in words])
            labels.append(bool(label))
        self.features = features
        self.labels = np.asarray(labels, dtype=bool)

    def split(self, train_fraction: float) -> tuple:
        """(train_features, train_labels, rest_features, rest_labels)."""
        cut = int(train_fraction * len(self.features))
        return (
            self.features[:cut],
            self.labels[:cut],
            self.features[cut:],
            self.labels[cut:],
        )
