"""Tests for the DeepDive language layer: AST, program, parser."""

import pytest

from repro.datalog import (
    Atom,
    DerivationRule,
    InferenceRule,
    Program,
    Var,
    WeightSpec,
    parse_program,
)
from repro.datalog.parser import ParseError
from repro.graph import Semantics


class TestWeightSpec:
    def test_tied_key(self):
        spec = WeightSpec(tied_on=("f",))
        assert spec.key_for("fe1", {"f": "and his wife"}) == (
            "fe1",
            ("and his wife",),
        )

    def test_untied_key_is_rule_global(self):
        spec = WeightSpec(value=1.5, fixed=True)
        assert spec.key_for("i1", {"x": 1}) == ("i1", ())


class TestRuleValidation:
    def test_unsafe_derivation_rule_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            DerivationRule(
                name="bad",
                head=Atom("H", (Var("x"), Var("y"))),
                body=(Atom("B", (Var("x"),)),),
            )

    def test_udf_may_bind_head_vars(self):
        rule = DerivationRule(
            name="feat",
            head=Atom("F", (Var("x"), Var("f"))),
            body=(Atom("B", (Var("x"),)),),
            udf=lambda b: [{"f": f"f_{b['x']}"}],
        )
        assert list(rule.expanded_bindings({"x": 1})) == [{"x": 1, "f": "f_1"}]

    def test_inference_rule_unbound_head_rejected(self):
        with pytest.raises(ValueError, match="head variables"):
            InferenceRule(
                name="bad",
                head=Atom("Q", (Var("z"),)),
                body=(Atom("B", (Var("x"),)),),
            )

    def test_inference_rule_unbound_weight_var_rejected(self):
        with pytest.raises(ValueError, match="weight tied"):
            InferenceRule(
                name="bad",
                head=Atom("Q", (Var("x"),)),
                body=(Atom("B", (Var("x"),)),),
                weight=WeightSpec(tied_on=("nope",)),
            )

    def test_head_tuple_instantiation(self):
        rule = DerivationRule(
            name="s1",
            head=Atom("Q_Ev", (Var("m"), True)),
            body=(Atom("B", (Var("m"),)),),
        )
        assert rule.head_tuple({"m": "m1"}) == ("m1", True)


class TestProgram:
    def test_declare_variable_creates_ev_relation(self):
        program = Program()
        program.declare_variable_relation("Q", ("a",))
        assert "Q_Ev" in program.schema
        assert program.schema["Q_Ev"] == ("a", "label")

    def test_duplicate_relation_rejected(self):
        program = Program()
        program.add_relation("R", ("a",))
        with pytest.raises(ValueError):
            program.add_relation("R", ("b",))

    def test_rule_arity_checked(self):
        program = Program()
        program.add_relation("R", ("a", "b"))
        program.add_relation("H", ("a",))
        with pytest.raises(ValueError, match="arity"):
            program.add_derivation_rule(
                "bad", Atom("H", (Var("x"),)), [Atom("R", (Var("x"),))]
            )

    def test_undeclared_relation_rejected(self):
        program = Program()
        program.add_relation("H", ("a",))
        with pytest.raises(ValueError, match="undeclared"):
            program.add_derivation_rule(
                "bad", Atom("H", (Var("x"),)), [Atom("Nope", (Var("x"),))]
            )

    def test_inference_head_must_be_variable_relation(self):
        program = Program()
        program.add_relation("R", ("a",))
        with pytest.raises(ValueError, match="variable relation"):
            program.add_inference_rule(
                "bad", Atom("R", (Var("x"),)), [Atom("R", (Var("x"),))]
            )

    def test_stratification_orders_dependencies(self):
        program = Program()
        program.add_relation("A", ("x",))
        program.add_relation("B", ("x",))
        program.add_relation("C", ("x",))
        # Deliberately added in reverse dependency order.
        program.add_derivation_rule("c", Atom("C", (Var("x"),)), [Atom("B", (Var("x"),))])
        program.add_derivation_rule("b", Atom("B", (Var("x"),)), [Atom("A", (Var("x"),))])
        names = [r.name for r in program.stratified_derivation_rules()]
        assert names.index("b") < names.index("c")

    def test_recursion_rejected(self):
        program = Program()
        program.add_relation("A", ("x",))
        program.add_derivation_rule("r", Atom("A", (Var("x"),)), [Atom("A", (Var("x"),))])
        with pytest.raises(ValueError, match="recursive"):
            program.stratified_derivation_rules()

    def test_base_relations(self):
        program = Program()
        program.add_relation("A", ("x",))
        program.add_relation("B", ("x",))
        program.add_derivation_rule("b", Atom("B", (Var("x"),)), [Atom("A", (Var("x"),))])
        assert program.base_relations() == {"A"}

    def test_remove_inference_rule(self):
        program = Program()
        program.declare_variable_relation("Q", ("x",))
        program.add_inference_rule("r", Atom("Q", (Var("x"),)), [Atom("Q", (Var("x"),))])
        program.remove_inference_rule("r")
        assert not program.inference_rules
        with pytest.raises(KeyError):
            program.remove_inference_rule("r")

    def test_default_semantics_applied(self):
        program = Program(default_semantics="logical")
        program.declare_variable_relation("Q", ("x",))
        rule = program.add_inference_rule(
            "r", Atom("Q", (Var("x"),)), [Atom("Q", (Var("x"),))]
        )
        assert program.semantics_of(rule) is Semantics.LOGICAL
        rule2 = program.add_inference_rule(
            "r2",
            Atom("Q", (Var("x"),)),
            [Atom("Q", (Var("x"),))],
            semantics="linear",
        )
        assert program.semantics_of(rule2) is Semantics.LINEAR


SPOUSE_TEXT = """
# The running example of the paper (Fig. 2).
relation PersonCandidate(s, m).
relation PhraseFeature(m1, m2, f).
variable MarriedMentions(m1, m2).

candidates: MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2).

vars: MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2).

fe1: MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), PhraseFeature(m1, m2, f)
    weight = tied(f) semantics = ratio.

i1: MarriedMentions(m2, m1) :- MarriedMentions(m1, m2)
    weight = 1.5 fixed.
"""


class TestParser:
    def test_parses_spouse_program(self):
        # MarriedCandidate is derived, so it must be declared too.
        text = "relation MarriedCandidate(m1, m2).\n" + SPOUSE_TEXT
        program = parse_program(text)
        assert "MarriedMentions" in program.variable_relations
        assert len(program.derivation_rules) == 2
        assert len(program.inference_rules) == 2
        fe1 = next(r for r in program.inference_rules if r.name == "fe1")
        assert fe1.weight.tied_on == ("f",)
        assert fe1.semantics is Semantics.RATIO
        i1 = next(r for r in program.inference_rules if r.name == "i1")
        assert i1.weight.fixed and i1.weight.value == 1.5

    def test_constants_in_atoms(self):
        program = parse_program(
            'relation R(a, b).\nrelation H(a).\n'
            'r: H(x) :- R(x, "const").\n'
            "r2: H(x) :- R(x, 42).\n"
            "r3: H(x) :- R(x, true).\n"
        )
        bodies = [rule.body[0].args[1] for rule in program.derivation_rules]
        assert bodies == ["const", 42, True]

    def test_float_weight_does_not_split_statement(self):
        program = parse_program(
            "variable Q(x).\n"
            "r: Q(x) :- Q(x) weight = 0.25.\n"
        )
        assert program.inference_rules[0].weight.value == 0.25

    def test_negation_marker(self):
        program = parse_program(
            "variable Q(x).\nrelation R(x).\n"
            "r: Q(x) :- R(x), !Q(x) weight = 1.0.\n"
        )
        rule = program.inference_rules[0]
        assert rule.negated_positions == frozenset({1})

    def test_negation_in_derivation_rule_rejected(self):
        with pytest.raises(ParseError, match="negation"):
            parse_program(
                "relation R(x).\nrelation H(x).\n"
                "r: H(x) :- R(x), !R(x).\n"
            )

    def test_unterminated_statement(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_program("relation R(a)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_program("relation R(a) @.")

    def test_comments_stripped(self):
        program = parse_program("# hello\nrelation R(a). # trailing\n")
        assert "R" in program.schema

    def test_anonymous_rule_gets_name(self):
        program = parse_program(
            "relation R(x).\nrelation H(x).\nH(x) :- R(x).\n"
        )
        assert program.derivation_rules[0].name
