"""Incremental grounding must be *semantically identical* to regrounding.

The central invariant of §3.1: after any sequence of base-table updates
and rule changes, the incrementally maintained factor graph equals the
graph produced by grounding the final database from scratch.  Graphs are
compared canonically (by tuple names, not variable ids).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Atom, DerivationRule, InferenceRule, Program, Var, WeightSpec
from repro.graph import FactorGraph, RuleFactor
from repro.grounding import Grounder, IncrementalGrounder

from tests.test_grounding import spouse_db, spouse_program


def canonical_form(graph: FactorGraph) -> dict:
    """Graph summary invariant to variable-id renumbering.

    Removed (tombstoned) variables — clamped False with no factors —
    are excluded so that incrementally maintained graphs compare equal
    to freshly grounded ones.
    """
    touched = set()
    for factor in graph.factors:
        touched.update(factor.variables())

    def name(v):
        n = graph.name_of(v)
        return n if n is not None else ("_anon", v)

    variables = set()
    evidence = {}
    for v in range(graph.num_vars):
        is_tombstone = (
            v not in touched and graph.evidence_value(v) is False
        )
        if is_tombstone:
            continue
        variables.add(name(v))
        if graph.is_evidence(v):
            evidence[name(v)] = graph.evidence_value(v)

    factors = {}
    for factor in graph.factors:
        if not isinstance(factor, RuleFactor):
            raise TypeError("canonical_form only supports rule factors")
        key = graph.weights.key_for(factor.weight_id)
        groundings = tuple(
            sorted(
                tuple(sorted((name(v), pos) for v, pos in g))
                for g in factor.groundings
            )
        )
        sig = (key, name(factor.head), factor.semantics.value, groundings)
        factors[sig] = factors.get(sig, 0) + 1
    return {"variables": variables, "evidence": evidence, "factors": factors}


def assert_equivalent(incremental: FactorGraph, scratch: FactorGraph):
    a, b = canonical_form(incremental), canonical_form(scratch)
    assert a["variables"] == b["variables"]
    assert a["evidence"] == b["evidence"]
    assert a["factors"] == b["factors"]


def reground(program_factory, db_builder, updates):
    """Apply ``updates`` incrementally AND from scratch; return both graphs."""
    # Incremental path.
    program_inc = program_factory()
    db_inc = db_builder(program_inc)
    grounder = IncrementalGrounder.from_scratch(program_inc, db_inc)
    for update in updates:
        grounder.apply_update(**update)

    # From-scratch path: replay the data updates on a fresh db.
    program_fresh = program_factory()
    db_fresh = db_builder(program_fresh)
    for update in updates:
        for rule in update.get("add_derivation_rules", ()):
            program_fresh.register_derivation_rule(rule)
        for rule in update.get("add_inference_rules", ()):
            program_fresh.register_inference_rule(rule)
        for name in update.get("remove_inference_rules", ()):
            program_fresh.remove_inference_rule(
                getattr(name, "name", name)
            )
    for update in updates:
        for rel, rows in (update.get("inserts") or {}).items():
            for row in rows:
                db_fresh.relation(rel).insert(row)
        for rel, rows in (update.get("deletes") or {}).items():
            for row in rows:
                db_fresh.relation(rel).delete(row)
    scratch = Grounder(program_fresh, db_fresh).ground()
    return grounder.graph, scratch.graph


class TestIncrementalMatchesScratch:
    def test_insert_new_sentence(self):
        incr, scratch = reground(
            spouse_program,
            spouse_db,
            [
                {
                    "inserts": {
                        "PersonCandidate": [("s3", "m5"), ("s3", "m6")],
                        "PhraseFeature": [("m5", "m6", "and his wife")],
                    }
                }
            ],
        )
        assert_equivalent(incr, scratch)

    def test_insert_new_feature_only(self):
        incr, scratch = reground(
            spouse_program,
            spouse_db,
            [{"inserts": {"PhraseFeature": [("m1", "m2", "were married")]}}],
        )
        assert_equivalent(incr, scratch)

    def test_new_supervision_data(self):
        incr, scratch = reground(
            spouse_program,
            spouse_db,
            [
                {
                    "inserts": {
                        "EL": [("m3", "e_a"), ("m4", "e_b")],
                        "Married": [("e_a", "e_b")],
                    }
                }
            ],
        )
        assert_equivalent(incr, scratch)

    def test_delete_feature(self):
        incr, scratch = reground(
            spouse_program,
            spouse_db,
            [{"deletes": {"PhraseFeature": [("m3", "m4", "friend of")]}}],
        )
        assert_equivalent(incr, scratch)

    def test_delete_person_removes_variables(self):
        incr, scratch = reground(
            spouse_program,
            spouse_db,
            [{"deletes": {"PersonCandidate": [("s2", "m4")]}}],
        )
        assert_equivalent(incr, scratch)

    def test_add_inference_rule(self):
        symmetry = InferenceRule(
            name="i1",
            head=Atom("MarriedMentions", (Var("m2"), Var("m1"))),
            body=(Atom("MarriedMentions", (Var("m1"), Var("m2"))),),
            weight=WeightSpec(value=1.5, fixed=True),
            semantics="logical",
        )
        incr, scratch = reground(
            spouse_program, spouse_db, [{"add_inference_rules": [symmetry]}]
        )
        assert_equivalent(incr, scratch)

    def test_remove_inference_rule(self):
        incr, scratch = reground(
            spouse_program, spouse_db, [{"remove_inference_rules": ["fe1"]}]
        )
        assert_equivalent(incr, scratch)

    def test_add_derivation_rule_cascades(self):
        """A new supervision rule derives evidence from existing data."""
        negatives = DerivationRule(
            name="s2",
            head=Atom("MarriedMentions_Ev", (Var("m1"), Var("m2"), False)),
            body=(
                Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
                Atom("EL", (Var("m1"), Var("e"))),
                Atom("EL", (Var("m2"), Var("e"))),
            ),
        )
        incr, scratch = reground(
            spouse_program, spouse_db, [{"add_derivation_rules": [negatives]}]
        )
        assert_equivalent(incr, scratch)

    def test_sequence_of_updates(self):
        updates = [
            {"inserts": {"PersonCandidate": [("s3", "m5"), ("s3", "m6")]}},
            {"inserts": {"PhraseFeature": [("m5", "m6", "and his wife")]}},
            {
                "add_inference_rules": [
                    InferenceRule(
                        name="i1",
                        head=Atom("MarriedMentions", (Var("m2"), Var("m1"))),
                        body=(
                            Atom("MarriedMentions", (Var("m1"), Var("m2"))),
                        ),
                        weight=WeightSpec(value=1.5, fixed=True),
                    )
                ]
            },
            {"deletes": {"PhraseFeature": [("m1", "m2", "and his wife")]}},
            {
                "inserts": {
                    "EL": [("m5", "e_x"), ("m6", "e_y")],
                    "Married": [("e_x", "e_y")],
                }
            },
        ]
        incr, scratch = reground(spouse_program, spouse_db, updates)
        assert_equivalent(incr, scratch)

    def test_evidence_flip_produces_update(self):
        program = spouse_program()
        db = spouse_db(program)
        grounder = IncrementalGrounder.from_scratch(program, db)
        vid = grounder.variable_of[("MarriedMentions", ("m3", "m4"))]
        result = grounder.apply_update(
            inserts={"MarriedMentions_Ev": [("m3", "m4", True)]}
        )
        assert result.delta.evidence_updates == {vid: True}
        assert result.graph.evidence_value(vid) is True

    def test_delta_classification_flags(self):
        program = spouse_program()
        db = spouse_db(program)
        grounder = IncrementalGrounder.from_scratch(program, db)
        # Pure supervision change: evidence but no structure.
        r1 = grounder.apply_update(
            inserts={"MarriedMentions_Ev": [("m3", "m4", False)]}
        )
        assert r1.delta.changes_evidence and not r1.delta.changes_structure
        # New feature: structure + new weights.
        r2 = grounder.apply_update(
            inserts={"PhraseFeature": [("m1", "m2", "brand new feature")]}
        )
        assert r2.delta.changes_structure and r2.delta.adds_features

    def test_empty_update_is_empty_delta(self):
        program = spouse_program()
        db = spouse_db(program)
        grounder = IncrementalGrounder.from_scratch(program, db)
        result = grounder.apply_update()
        assert result.delta.is_empty


@st.composite
def update_sequences(draw):
    """Random update sequences over a small universe."""
    persons = [f"m{i}" for i in range(6)]
    sentences = [f"s{i}" for i in range(3)]
    features = ["fA", "fB", "fC"]
    updates = []
    for _ in range(draw(st.integers(1, 4))):
        inserts, deletes = {}, {}
        kind = draw(st.integers(0, 3))
        if kind == 0:
            inserts["PersonCandidate"] = [
                (draw(st.sampled_from(sentences)), draw(st.sampled_from(persons)))
            ]
        elif kind == 1:
            inserts["PhraseFeature"] = [
                (
                    draw(st.sampled_from(persons)),
                    draw(st.sampled_from(persons)),
                    draw(st.sampled_from(features)),
                )
            ]
        elif kind == 2:
            inserts["EL"] = [
                (draw(st.sampled_from(persons)), draw(st.sampled_from(["e1", "e2"])))
            ]
            inserts["Married"] = [("e1", "e2")]
        else:
            deletes["PersonCandidate"] = [("s1", "m1")]
        updates.append({"inserts": inserts or None, "deletes": deletes or None})
    return updates


class TestIncrementalProperty:
    @given(update_sequences())
    @settings(max_examples=25, deadline=None)
    def test_random_update_sequences_match_scratch(self, updates):
        # Deletions may target absent tuples; skip those sequences.
        try:
            incr, scratch = reground(spouse_program, spouse_db, updates)
        except KeyError as err:
            if "delete" in str(err):
                return
            raise
        assert_equivalent(incr, scratch)
