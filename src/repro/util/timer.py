"""Wall-clock timing helpers used by the benchmark harnesses."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point (for incremental laps)."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Seconds since construction or last :meth:`restart`."""
        return time.perf_counter() - self._start
