"""The database: a catalog of named relations."""

from __future__ import annotations

from repro.db.relation import Relation


class Database:
    """Named relations plus convenience bulk operations."""

    def __init__(self) -> None:
        self._relations: dict = {}

    def create_relation(self, name: str, columns) -> Relation:
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        relation = Relation(name, columns)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def drop_relation(self, name: str) -> None:
        del self._relations[name]

    def relation_names(self) -> list:
        return list(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def insert_all(self, name: str, rows) -> int:
        """Bulk insert; returns how many tuples became newly visible."""
        relation = self.relation(name)
        return sum(1 for row in rows if relation.insert(row))

    def copy(self) -> "Database":
        """Independent copy of every relation (indexes rebuilt lazily)."""
        clone = Database()
        for name, relation in self._relations.items():
            fresh = clone.create_relation(name, relation.columns)
            for row, count in relation.counts().items():
                fresh.insert(row, count)
        return clone

    def stats(self) -> dict:
        return {name: len(rel) for name, rel in self._relations.items()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"Database({parts})"
