"""Correctness tests for the Gibbs samplers against the exact oracle."""

import numpy as np
import pytest

from repro.graph import FactorGraph, Semantics
from repro.inference import ChromaticGibbsSampler, ExactInference, GibbsSampler
from repro.inference.chromatic import greedy_coloring
from repro.util.stats import max_marginal_error

from tests.helpers import (
    chain_ising_graph,
    implication_graph,
    random_pairwise_graph,
    single_bias_graph,
    voting_graph,
)


class TestGibbsSampler:
    def test_single_variable_conditional(self):
        fg = single_bias_graph(weight=0.7)
        sampler = GibbsSampler(fg, seed=0)
        exact = ExactInference(fg).marginal(0)
        assert sampler.conditional_probability(0) == pytest.approx(exact)

    def test_marginals_match_exact_on_chain(self):
        fg = chain_ising_graph(5, coupling=0.6, bias=0.3)
        exact = ExactInference(fg).marginals()
        sampler = GibbsSampler(fg, seed=1)
        est = sampler.estimate_marginals(4000, burn_in=100)
        assert max_marginal_error(est, exact) < 0.04

    def test_marginals_match_exact_on_rule_graph(self):
        fg = implication_graph(Semantics.RATIO)
        exact = ExactInference(fg).marginals()
        sampler = GibbsSampler(fg, seed=2)
        est = sampler.estimate_marginals(6000, burn_in=200)
        assert max_marginal_error(est, exact) < 0.04

    def test_marginals_match_exact_on_voting(self):
        fg = voting_graph(3, 2, semantics=Semantics.RATIO, voter_bias=0.4)
        exact = ExactInference(fg).marginals()
        sampler = GibbsSampler(fg, seed=3, randomize_scan=True)
        est = sampler.estimate_marginals(6000, burn_in=200)
        assert max_marginal_error(est, exact) < 0.04

    def test_evidence_never_flipped(self):
        fg = chain_ising_graph(4, coupling=2.0)
        fg.set_evidence(0, True)
        fg.set_evidence(3, False)
        sampler = GibbsSampler(fg, seed=4)
        worlds = sampler.sample_worlds(200)
        assert worlds[:, 0].all()
        assert not worlds[:, 3].any()

    def test_evidence_propagates_through_coupling(self):
        fg = chain_ising_graph(3, coupling=1.5, bias=0.0)
        fg.set_evidence(0, True)
        sampler = GibbsSampler(fg, seed=5)
        est = sampler.estimate_marginals(3000, burn_in=100)
        exact = ExactInference(fg).marginals()
        assert est[1] > 0.8
        assert max_marginal_error(est, exact) < 0.05

    def test_deterministic_given_seed(self):
        fg = chain_ising_graph(5)
        a = GibbsSampler(fg, seed=42).sample_worlds(50)
        b = GibbsSampler(fg, seed=42).sample_worlds(50)
        assert np.array_equal(a, b)

    def test_initial_state_respected(self):
        fg = chain_ising_graph(4)
        init = np.array([True, True, False, False])
        sampler = GibbsSampler(fg, seed=0, initial=init)
        assert np.array_equal(sampler.state, init)

    def test_sweep_counter(self):
        fg = chain_ising_graph(3)
        sampler = GibbsSampler(fg, seed=0)
        sampler.run(7)
        assert sampler.sweeps_done == 7

    def test_slow_path_factor_sampled_correctly(self):
        # Self-referential rule: q :- q (head in body) uses the slow path.
        fg = FactorGraph()
        q = fg.add_variable()
        wid = fg.weights.intern("w", initial=0.8)
        fg.add_rule_factor(wid, q, [[(q, True)]], Semantics.LOGICAL)
        exact = ExactInference(fg).marginal(0)
        est = GibbsSampler(fg, seed=6).estimate_marginals(6000)[0]
        assert est == pytest.approx(exact, abs=0.03)


class TestChromaticGibbs:
    def test_coloring_is_proper(self):
        fg = random_pairwise_graph(30, density=0.2, seed=1)
        edges = [
            (f.i, f.j)
            for f in fg.factors
            if hasattr(f, "i") and hasattr(f, "j")
        ]
        classes = greedy_coloring(fg.num_vars, edges)
        color_of = {}
        for c, cls in enumerate(classes):
            for v in cls:
                color_of[int(v)] = c
        for i, j in edges:
            assert color_of[i] != color_of[j]

    def test_coloring_covers_all_vars(self):
        classes = greedy_coloring(5, [(0, 1), (1, 2)])
        covered = sorted(int(v) for cls in classes for v in cls)
        assert covered == [0, 1, 2, 3, 4]

    def test_marginals_match_exact(self):
        fg = random_pairwise_graph(8, density=0.4, seed=2)
        exact = ExactInference(fg).marginals()
        sampler = ChromaticGibbsSampler(fg, seed=0)
        est = sampler.estimate_marginals(6000, burn_in=200)
        assert max_marginal_error(est, exact) < 0.04

    def test_matches_sequential_gibbs(self):
        fg = random_pairwise_graph(10, density=0.3, seed=3)
        seq = GibbsSampler(fg, seed=1).estimate_marginals(5000, burn_in=100)
        chrom = ChromaticGibbsSampler(fg, seed=2).estimate_marginals(
            5000, burn_in=100
        )
        assert max_marginal_error(seq, chrom) < 0.05

    def test_rejects_rule_factors(self):
        fg = voting_graph(2, 2)
        with pytest.raises(TypeError):
            ChromaticGibbsSampler(fg)

    def test_evidence_respected(self):
        fg = random_pairwise_graph(6, density=0.5, seed=4)
        fg.set_evidence(2, True)
        sampler = ChromaticGibbsSampler(fg, seed=0)
        worlds = sampler.sample_worlds(100)
        assert worlds[:, 2].all()
