"""Tests for convergence measurement and MH edge cases."""

import numpy as np
import pytest

from repro.graph import FactorGraphDelta, Semantics
from repro.inference import IndependentMH
from repro.inference.convergence import sweeps_to_marginal
from repro.inference.exact import ExactInference
from repro.workloads import voting_program

from tests.helpers import chain_ising_graph


class TestConvergenceMeasurement:
    def test_easy_graph_converges_quickly(self):
        fg = chain_ising_graph(4, coupling=0.2, bias=0.0)
        result = sweeps_to_marginal(
            fg, var=0, target=0.5, tol=0.15, num_chains=16, max_sweeps=200,
            seed=0,
        )
        assert result["converged"]
        assert result["sweeps"] < 200
        assert result["variable_updates"] == result["sweeps"] * 4

    def test_unreachable_target_hits_cap(self):
        fg = chain_ising_graph(3, coupling=0.0, bias=3.0)
        result = sweeps_to_marginal(
            fg, var=0, target=0.0, tol=0.01, num_chains=8, max_sweeps=20,
            seed=0,
        )
        assert not result["converged"]
        assert result["sweeps"] == 20

    def test_linear_voting_slower_than_ratio(self):
        """The Fig. 13 contrast at small scale, from worst-case starts."""
        n = 12
        worst = np.zeros(1 + 2 * n, dtype=bool)
        worst[: 1 + n] = True
        results = {}
        for sem in (Semantics.LINEAR, Semantics.RATIO):
            fg = voting_program(n, n, semantics=sem)
            results[sem] = sweeps_to_marginal(
                fg, var=0, target=0.5, tol=0.06, num_chains=32,
                max_sweeps=500, seed=1, initial=worst,
            )
        assert (
            results[Semantics.LINEAR]["sweeps"]
            >= results[Semantics.RATIO]["sweeps"]
        )


class TestIndependentMHEdgeCases:
    def test_shape_validation(self):
        fg = chain_ising_graph(3)
        with pytest.raises(ValueError):
            IndependentMH(fg, FactorGraphDelta(), np.zeros((5, 7), dtype=bool))

    def test_zero_steps(self):
        fg = chain_ising_graph(3)
        samples = np.zeros((10, 3), dtype=bool)
        mh = IndependentMH(fg, FactorGraphDelta(), samples, seed=0)
        result = mh.run(0)
        assert result.proposals_used == 0
        # Asking for zero steps is not exhaustion: samples remain.
        assert not result.exhausted

    def test_zero_steps_reports_initial_state_not_zeros(self):
        """Regression: a 0-step run used to return ``counts / 1`` — an
        all-zero marginal vector masquerading as a confident answer."""
        fg = chain_ising_graph(3, coupling=0.0, bias=2.0)
        samples = np.ones((4, 3), dtype=bool)
        mh = IndependentMH(fg, FactorGraphDelta(), samples, seed=0)
        result = mh.run(0)
        assert result.proposals_used == 0
        # Initial-state counts (the first stored world), not zeros.
        assert result.marginals.min() == 1.0

    def test_empty_bundle_raises_instead_of_fabricating(self):
        """Regression: MH over an empty bundle crashed with IndexError
        (or would return zeros); it must fail loudly so callers fall
        back."""
        fg = chain_ising_graph(3)
        empty = np.zeros((0, 3), dtype=bool)
        mh = IndependentMH(fg, FactorGraphDelta(), empty, seed=0)
        with pytest.raises(ValueError, match="no stored proposals"):
            mh.run(10)

    def test_keep_chain_shape(self):
        fg = chain_ising_graph(3)
        samples = np.zeros((10, 3), dtype=bool)
        mh = IndependentMH(fg, FactorGraphDelta(), samples, seed=0)
        result = mh.run(5, keep_chain=True)
        assert result.chain.shape == (5, 3)

    def test_contradictory_evidence_rejects_proposals(self):
        """Samples all-false; delta clamps a var true: proposals violate
        the evidence so only the (forced) initial state survives."""
        fg = chain_ising_graph(3, coupling=0.0, bias=0.0)
        samples = np.zeros((50, 3), dtype=bool)
        delta = FactorGraphDelta(evidence_updates={0: True})
        mh = IndependentMH(fg, delta, samples, seed=0)
        result = mh.run(50)
        assert result.acceptance_rate == 0.0
        assert result.marginals[0] == 1.0  # forced initial state kept

    def test_converges_to_updated_distribution_given_good_bundle(self):
        fg = chain_ising_graph(5, coupling=0.4, bias=0.1)
        from repro.inference import GibbsSampler

        bundle = GibbsSampler(fg, seed=0).sample_worlds(3000, burn_in=100)
        delta = FactorGraphDelta()
        delta.new_weight_entries.append(("b", 0.8, False))
        from repro.graph import BiasFactor

        delta.new_factors.append(
            BiasFactor(weight_id=len(fg.weights), var=2)
        )
        mh = IndependentMH(fg, delta, bundle, seed=1)
        result = mh.run(3000)
        exact = ExactInference(delta.apply(fg)).marginals()
        assert np.abs(result.marginals - exact).max() < 0.08
