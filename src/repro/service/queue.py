"""Bounded admission queue for the online KB service.

The write path is intentionally lossy at the edge, not in the middle:
a full queue rejects the *submitting* client with
:class:`~repro.service.server.BackpressureError` instead of buffering
without bound.  Everything that was admitted is eventually applied (or
explicitly failed by the batcher), so the queue depth — together with
the batcher's in-flight count — is an exact upper bound on how stale a
read snapshot can be, which is what lets the service offer bounded
staleness instead of "eventual".
"""

from __future__ import annotations

import threading
from collections import deque

from repro.reliability.faults import maybe_fire


class QueueFull(Exception):
    """Internal signal: the queue rejected a submission.

    The service re-raises it as the client-facing
    :class:`~repro.service.server.BackpressureError` with admission
    stats attached."""


class BoundedUpdateQueue:
    """Thread-safe FIFO of update payloads with a hard depth cap.

    ``submit`` assigns a monotonically increasing sequence number to
    each accepted payload (the service's admission order, distinct from
    the WAL transaction id it will eventually commit under).
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = 0
        self.accepted = 0
        self.rejected = 0
        self.high_water = 0
        self._closed = False

    def submit(self, payload: dict) -> int:
        """Admit one update payload; returns its sequence number.

        Raises :class:`QueueFull` when the queue is at capacity — the
        admission-control decision happens here, synchronously, so the
        caller learns immediately rather than after a buffered payload
        is eventually dropped."""
        with self._not_empty:
            if self._closed:
                raise QueueFull("queue closed")
            maybe_fire("service.queue.put", depth=len(self._items))
            if len(self._items) >= self.maxsize:
                self.rejected += 1
                raise QueueFull(
                    f"queue at capacity ({self.maxsize}); "
                    f"{self.rejected} rejected so far"
                )
            self._seq += 1
            self._items.append((self._seq, payload))
            self.accepted += 1
            self.high_water = max(self.high_water, len(self._items))
            self._not_empty.notify()
            return self._seq

    def drain(self, max_batch: int = 8, timeout: float = 0.05) -> list:
        """Pop up to ``max_batch`` payloads, waiting ``timeout`` seconds
        for the first one.  Returns ``[(seq, payload), ...]`` (possibly
        empty)."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            batch = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            return batch

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Stop admitting; wake any drain() waiter."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._items),
                "maxsize": self.maxsize,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "high_water": self.high_water,
            }
