"""Tests for the compiled incidence index and the Gibbs cache.

The key invariant: ``delta_energy`` computed from the caches must equal
the brute-force energy difference ``E(x|v=1) − E(x|v=0)``, for any graph,
any state, any variable — hypothesis hammers this.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompiledFactorGraph, FactorGraph, Semantics
from repro.graph.compiled import GibbsCache

from tests.helpers import (
    chain_ising_graph,
    implication_graph,
    random_pairwise_graph,
    voting_graph,
)


def brute_force_delta(graph, x, var):
    x1 = x.copy()
    x1[var] = True
    x0 = x.copy()
    x0[var] = False
    return graph.energy(x1) - graph.energy(x0)


def random_rule_graph(
    seed: int,
    num_vars: int = 6,
    num_factors: int = 8,
    slow_paths: bool = False,
) -> FactorGraph:
    """Random graph mixing all three factor kinds and semantics.

    With ``slow_paths=True`` some rule factors deliberately put the head
    in their own body or duplicate a literal's variable within one
    grounding, exercising the brute-force slow path.
    """
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    variables = [fg.add_variable() for _ in range(num_vars)]
    semantics = list(Semantics)
    for k in range(num_factors):
        wid = fg.weights.intern(("w", k), initial=float(rng.normal(0, 1)))
        kind = rng.integers(0, 3)
        if kind == 0:
            fg.add_bias_factor(wid, int(rng.integers(num_vars)))
        elif kind == 1:
            i, j = rng.choice(num_vars, size=2, replace=False)
            fg.add_ising_factor(wid, int(i), int(j))
        else:
            head = int(rng.integers(num_vars))
            groundings = []
            for _ in range(int(rng.integers(1, 4))):
                size = int(rng.integers(1, 4))
                lits = [
                    (int(rng.integers(num_vars)), bool(rng.integers(2)))
                    for _ in range(size)
                ]
                if slow_paths and rng.random() < 0.5:
                    if rng.random() < 0.5:
                        # Head appears in its own body.
                        lits.append((head, bool(rng.integers(2))))
                    else:
                        # Duplicated variable within one grounding.
                        dup = lits[int(rng.integers(len(lits)))][0]
                        lits.append((dup, bool(rng.integers(2))))
                groundings.append(lits)
            fg.add_rule_factor(
                wid, head, groundings, semantics[int(rng.integers(3))]
            )
    return fg


class TestCompiledStructure:
    def test_incidences_cover_all_factors(self):
        fg = implication_graph()
        compiled = CompiledFactorGraph(fg)
        # Variable q (0) is head of the single rule factor (dense rule 0).
        assert compiled.py_head[0] == [0]
        assert compiled.head_ri[
            compiled.head_indptr[0] : compiled.head_indptr[1]
        ].tolist() == [0]
        # a, b, c appear in bodies; all incidences belong to rule 0.
        a_slice = slice(compiled.body_indptr[1], compiled.body_indptr[2])
        assert set(compiled.body_ri[a_slice].tolist()) == {0}
        # b occurs in both groundings.
        assert compiled.body_indptr[3] - compiled.body_indptr[2] == 2

    def test_csr_arrays_consistent(self):
        fg = implication_graph()
        compiled = CompiledFactorGraph(fg)
        assert compiled.num_rules == 1
        assert compiled.num_groundings == 2
        assert compiled.grounding_ri.tolist() == [0, 0]
        assert compiled.lit_gg.size == compiled.lit_var.size == 4
        # Flat body arrays and the Python mirror agree.
        for var in range(fg.num_vars):
            lo, hi = compiled.body_indptr[var], compiled.body_indptr[var + 1]
            mirror = [
                (ri, gg, pos)
                for ri, lits in compiled.py_body[var]
                for gg, pos in lits
            ]
            flat = list(
                zip(
                    compiled.body_ri[lo:hi].tolist(),
                    compiled.body_gg[lo:hi].tolist(),
                    compiled.body_pos[lo:hi].tolist(),
                )
            )
            assert mirror == flat

    def test_pairwise_flag(self):
        assert CompiledFactorGraph(chain_ising_graph(4)).is_pairwise
        assert not CompiledFactorGraph(voting_graph(2, 2)).is_pairwise

    def test_self_loop_rule_goes_to_slow_path(self):
        fg = FactorGraph()
        q = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.0)
        fg.add_rule_factor(wid, q, [[(q, True)]], Semantics.LOGICAL)
        compiled = CompiledFactorGraph(fg)
        assert 0 in compiled.slow_factors
        assert not compiled.rule_factors

    def test_duplicate_var_in_grounding_goes_to_slow_path(self):
        fg = FactorGraph()
        q = fg.add_variable()
        a = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.0)
        fg.add_rule_factor(wid, q, [[(a, True), (a, False)]], Semantics.LOGICAL)
        compiled = CompiledFactorGraph(fg)
        assert 0 in compiled.slow_factors

    def test_degree(self):
        fg = chain_ising_graph(4)
        compiled = CompiledFactorGraph(fg)
        assert compiled.degree(0) == 2  # one coupling + one bias
        assert compiled.degree(1) == 3

    def test_free_vars_exclude_evidence(self):
        fg = chain_ising_graph(4)
        fg.set_evidence(1, True)
        compiled = CompiledFactorGraph(fg)
        assert 1 not in compiled.free_vars.tolist()


class TestGibbsCacheCorrectness:
    @given(st.integers(min_value=0, max_value=500), st.data())
    @settings(max_examples=80, deadline=None)
    def test_delta_energy_matches_brute_force(self, seed, data):
        fg = random_rule_graph(seed)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed + 1)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        var = data.draw(st.integers(min_value=0, max_value=fg.num_vars - 1))
        assert cache.delta_energy(var, x) == pytest.approx(
            brute_force_delta(fg, x, var), abs=1e-9
        )

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_cache_stays_consistent_under_flips(self, seed):
        fg = random_rule_graph(seed)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        for _ in range(30):
            var = int(rng.integers(fg.num_vars))
            new_value = bool(rng.integers(2))
            cache.commit_flip(var, new_value, x)
            assert x[var] == new_value
        cache.check_consistency(x)

    def test_flip_to_same_value_is_noop(self):
        fg = voting_graph(2, 2)
        compiled = CompiledFactorGraph(fg)
        x = np.zeros(fg.num_vars, dtype=bool)
        cache = GibbsCache(compiled, x)
        cache.commit_flip(1, False, x)
        cache.check_consistency(x)

    def test_delta_energy_after_many_flips(self):
        fg = random_rule_graph(99, num_vars=8, num_factors=12)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(7)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        for _ in range(50):
            var = int(rng.integers(fg.num_vars))
            cache.commit_flip(var, bool(rng.integers(2)), x)
        for var in range(fg.num_vars):
            assert cache.delta_energy(var, x) == pytest.approx(
                brute_force_delta(fg, x, var), abs=1e-9
            )

    def test_pairwise_graph_has_no_rule_state(self):
        fg = random_pairwise_graph(10, seed=3)
        compiled = CompiledFactorGraph(fg)
        x = np.zeros(10, dtype=bool)
        cache = GibbsCache(compiled, x)
        assert cache.unsat.size == 0 and cache.nsat.size == 0


class TestRandomizedEquivalence:
    """Randomized equivalence of the flat kernels against brute force,
    including slow-path factors (head-in-body, duplicated literals)."""

    @given(st.integers(min_value=0, max_value=300), st.data())
    @settings(max_examples=60, deadline=None)
    def test_delta_energy_matches_brute_force_with_slow_paths(self, seed, data):
        fg = random_rule_graph(seed, num_vars=7, num_factors=10, slow_paths=True)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed + 1)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        var = data.draw(st.integers(min_value=0, max_value=fg.num_vars - 1))
        assert cache.delta_energy(var, x) == pytest.approx(
            brute_force_delta(fg, x, var), abs=1e-9
        )

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_hundred_random_flips_stay_consistent(self, seed):
        fg = random_rule_graph(seed, num_vars=8, num_factors=12, slow_paths=True)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        for _ in range(100):
            var = int(rng.integers(fg.num_vars))
            cache.commit_flip(var, bool(rng.integers(2)), x)
        cache.check_consistency(x)
        for var in range(fg.num_vars):
            assert cache.delta_energy(var, x) == pytest.approx(
                brute_force_delta(fg, x, var), abs=1e-9
            )

    def test_batched_kernel_matches_scalar(self):
        # Wide graph with disjoint rule factors so the plan forms real
        # batched blocks, including head and body incidences.
        from repro.graph.compiled import _BATCH_MIN
        from repro.inference.gibbs import GibbsSampler

        rng = np.random.default_rng(11)
        fg = FactorGraph()
        num_groups = 40
        # Same-factor variables are spaced num_groups apart in id (scan)
        # order, so consecutive variables share no factor and the planner
        # forms large batched blocks with head AND body incidences.
        heads = list(fg.add_variables(num_groups))
        bodies = list(fg.add_variables(2 * num_groups))
        for g in range(num_groups):
            wid = fg.weights.intern(("r", g), initial=float(rng.normal(0, 0.8)))
            fg.add_rule_factor(
                wid,
                heads[g],
                [
                    [(bodies[g], bool(rng.integers(2)))],
                    [(bodies[num_groups + g], bool(rng.integers(2)))],
                ],
                list(Semantics)[g % 3],
            )
            wb = fg.weights.intern(("b", g), initial=float(rng.normal(0, 0.5)))
            for v in (heads[g], bodies[g], bodies[num_groups + g]):
                fg.add_bias_factor(wb, v)
        sampler = GibbsSampler(fg, seed=0)
        assert any(
            b.use_batch and b.vars.size >= _BATCH_MIN
            for b in sampler.plan.blocks
        )
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(CompiledFactorGraph(fg), x)
        for block in sampler.plan.blocks:
            if not block.use_batch:
                continue
            batched = cache.delta_energy_block(block, x)
            for k, var in enumerate(block.vars):
                assert batched[k] == pytest.approx(
                    brute_force_delta(fg, x, int(var)), abs=1e-9
                )

    def test_evidence_set_after_compilation_respected(self):
        from repro.inference.gibbs import GibbsSampler

        fg = chain_ising_graph(5, coupling=2.0)
        compiled = CompiledFactorGraph(fg)
        fg.set_evidence(0, True)
        sampler = GibbsSampler(fg, seed=0, compiled=compiled)
        assert 0 not in sampler.plan.free_vars.tolist()
        worlds = sampler.sample_worlds(50)
        assert worlds[:, 0].all()

    def test_sweep_leaves_cache_consistent(self):
        from repro.inference.gibbs import GibbsSampler

        fg = random_rule_graph(42, num_vars=10, num_factors=14, slow_paths=True)
        sampler = GibbsSampler(fg, seed=5)
        sampler.run(20)
        sampler.cache.check_consistency(sampler.state)

    def test_marginals_match_exact_inference(self):
        from repro.inference.exact import ExactInference
        from repro.inference.gibbs import GibbsSampler
        from repro.util.stats import max_marginal_error

        fg = random_rule_graph(7, num_vars=6, num_factors=9, slow_paths=True)
        exact = ExactInference(fg).marginals()
        est = GibbsSampler(fg, seed=3).estimate_marginals(8000, burn_in=300)
        assert max_marginal_error(est, exact) < 0.04
