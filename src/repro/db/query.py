"""Conjunctive-query evaluation: the grounding phase's join engine.

Grounding in DeepDive is a set of SQL queries (§2.5); here those queries
are conjunctions of atoms over relations.  Evaluation is a backtracking
join: atoms are processed left to right, each one either probing a lazily
built hash index (when bound by the current partial binding) or scanning.

For incremental maintenance the evaluator accepts per-atom *source
overrides*: an atom can draw its rows from an explicit signed list (a
delta relation) instead of the stored relation, and the signs multiply
through the join — exactly what the counting algorithm's
"Δ(A₁ ⋈ … ⋈ A_k) = Σ_S ⋈Δ/⋈old" expansion needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database


@dataclass(frozen=True)
class Var:
    """A query variable (anything else in an atom is a constant)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Atom:
    """``pred(args…)`` — args mix :class:`Var` and Python constants."""

    pred: str
    args: tuple

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(self.args))

    def variables(self):
        return [a.name for a in self.args if isinstance(a, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.pred}({inner})"


def _match_row(atom: Atom, row, binding: dict):
    """Extend ``binding`` with ``row`` if consistent, else ``None``."""
    merged = binding
    copied = False
    for arg, value in zip(atom.args, row):
        if isinstance(arg, Var):
            if arg.name in merged:
                if merged[arg.name] != value:
                    return None
            else:
                if not copied:
                    merged = dict(merged)
                    copied = True
                merged[arg.name] = value
        elif arg != value:
            return None
    return merged


def _candidate_rows(db: Database, atom: Atom, binding: dict, source):
    """Rows that could match ``atom`` under ``binding``."""
    if source is not None:
        return source  # explicit (row, sign) list — filtered by _match_row
    bound_positions = []
    bound_values = []
    for pos, arg in enumerate(atom.args):
        if isinstance(arg, Var):
            if arg.name in binding:
                bound_positions.append(pos)
                bound_values.append(binding[arg.name])
        else:
            bound_positions.append(pos)
            bound_values.append(arg)
    rows = db.relation(atom.pred).lookup(bound_positions, bound_values)
    return [(row, 1) for row in rows]


def static_join_order(atoms, source_positions=frozenset(), prebound=frozenset()):
    """The query's static atom order under the ``bound_score`` heuristic.

    Greedy: delta sources first, then the atom with the most bound
    argument positions (constants count as bound; a processed atom binds
    all its variables).  Which variables are bound at any point of the
    backtracking join depends only on *which atoms* were already
    processed — never on their values — so the per-binding order the
    evaluator used to recompute is in fact one static order per query;
    computing it once here removes the O(k²) rescoring from every
    recursion level of the slow path and gives the columnar plan compiler
    (:mod:`repro.db.plan`) the identical order.
    """
    atoms = tuple(atoms)
    bound = set(prebound)
    remaining = list(range(len(atoms)))
    order = []

    def bound_score(idx: int) -> tuple:
        atom = atoms[idx]
        count = sum(
            1
            for arg in atom.args
            if not isinstance(arg, Var) or arg.name in bound
        )
        return (idx in source_positions, count, -idx)

    while remaining:
        idx = max(remaining, key=bound_score)
        remaining.remove(idx)
        order.append(idx)
        for arg in atoms[idx].args:
            if isinstance(arg, Var):
                bound.add(arg.name)
    return tuple(order)


def evaluate_query(
    db: Database,
    atoms,
    initial_binding: dict | None = None,
    sources: dict | None = None,
):
    """Yield ``(binding, sign)`` for every derivation of the conjunction.

    This is the tuple-at-a-time reference evaluator — the slow-path
    oracle the columnar plans (:mod:`repro.db.plan`) are equivalence
    -tested against.

    Parameters
    ----------
    atoms:
        Sequence of :class:`Atom`.
    initial_binding:
        Pre-bound variables (e.g. from an outer context).
    sources:
        Optional ``{atom index: [(row, sign), ...]}`` overrides.  Atoms
        with an override are evaluated *first* (they are typically small
        delta relations), and their signs multiply into the result.
    """
    atoms = list(atoms)
    initial_binding = dict(initial_binding or {})
    order = static_join_order(
        atoms,
        frozenset(sources or ()),
        frozenset(initial_binding),
    )

    def recurse(level: int, binding: dict, sign: int):
        if level == len(order):
            yield binding, sign
            return
        idx = order[level]
        atom = atoms[idx]
        source = sources.get(idx) if sources else None
        for row, row_sign in _candidate_rows(db, atom, binding, source):
            extended = _match_row(atom, row, binding)
            if extended is not None:
                yield from recurse(level + 1, extended, sign * row_sign)

    yield from recurse(0, initial_binding, 1)


def evaluate_bindings(db: Database, atoms, initial_binding=None):
    """Convenience: yield unsigned bindings of a plain (non-delta) query."""
    for binding, _sign in evaluate_query(db, atoms, initial_binding):
        yield binding


def binding_counts(db: Database, atoms, head_vars, sources=None) -> dict:
    """Aggregate signed derivation counts of the projection onto
    ``head_vars``.

    Returns ``{projected tuple: signed count}`` — the delta (or full
    content) of a derived relation defined by ``head :- atoms``.
    """
    counts: dict = {}
    for binding, sign in evaluate_query(db, atoms, sources=sources):
        key = tuple(binding[v] for v in head_vars)
        counts[key] = counts.get(key, 0) + sign
    return {k: c for k, c in counts.items() if c != 0}
