"""Full grounding: program + database → factor graph (paper §2.5, Fig. 3).

Phases, mirroring the paper's execution model:

1. **Derivation** — evaluate the deterministic rules (candidate mappings,
   feature extraction, supervision) in stratified order, recording
   derivation counts (this is what DRed's delta relations maintain).
2. **Variables** — every visible tuple of every variable relation becomes
   a Boolean random variable.
3. **Evidence** — rows of ``R_Ev`` relations clamp the matching variable.
4. **Factors** — each inference rule's body join is evaluated; bindings
   are grouped by ``(head variable, weight key)`` and each group becomes
   one rule factor whose groundings are the bodies' variable literals.

Two join engines drive phases 1 and 4.  The default ``columnar`` engine
compiles each rule body into a vectorized plan over the database's
columnar mirrors (:mod:`repro.db.plan`) and folds whole binding batches
into relations and factor records; the ``legacy`` engine is the original
tuple-at-a-time evaluator (:func:`repro.db.query.evaluate_query`), kept
as the randomized-equivalence slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datalog.ast import EVIDENCE_SUFFIX, InferenceRule
from repro.datalog.program import Program
from repro.db.database import Database
from repro.db.query import Var, evaluate_query
from repro.graph.factor_graph import FactorGraph, RuleFactor

_ENGINES = ("columnar", "legacy")


class GroundingMultiset:
    """Counted multiset of groundings — insertion-ordered, O(1) updates.

    Factor records used to keep groundings as a plain list, making each
    retraction an O(n) ``list.remove`` scan (quadratic over a heavy
    retraction delta).  This keeps ``{grounding: count}`` (dicts preserve
    insertion order), so a batch of |Δ| retractions costs O(|Δ|).
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, items=()) -> None:
        self._counts: dict = {}
        self._total = 0
        if items:
            self.extend(items)

    def append(self, grounding) -> None:
        self._counts[grounding] = self._counts.get(grounding, 0) + 1
        self._total += 1

    def extend(self, groundings) -> None:
        counts = self._counts
        added = 0
        for grounding in groundings:
            counts[grounding] = counts.get(grounding, 0) + 1
            added += 1
        self._total += added

    def remove(self, grounding) -> None:
        count = self._counts.get(grounding, 0)
        if count == 0:
            raise ValueError(f"grounding not present: {grounding!r}")
        if count == 1:
            del self._counts[grounding]
        else:
            self._counts[grounding] = count - 1
        self._total -= 1

    def counts(self) -> dict:
        """A copy of the ``{grounding: count}`` map."""
        return dict(self._counts)

    def as_tuple(self) -> tuple:
        """All groundings (with multiplicity) as a tuple."""
        counts = self._counts
        if self._total == len(counts):  # all counts 1: one C-level pass
            return tuple(counts)
        return tuple(self)

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def __iter__(self):
        for grounding, count in self._counts.items():
            for _ in range(count):
                yield grounding


@dataclass
class FactorRecord:
    """Bookkeeping for one grounded factor (used incrementally).

    During a full ground ``groundings`` is a plain list (append-only, so
    C-level extends suffice); :class:`IncrementalGrounder` promotes it to
    a :class:`GroundingMultiset` so retraction deltas stay O(|Δ|).
    """

    rule_name: str
    head_var: int
    weight_id: int
    semantics: object
    groundings: object = field(default_factory=list)
    factor_index: int = -1


@dataclass
class GroundingResult:
    """The grounded graph plus the maps incremental maintenance needs."""

    graph: FactorGraph
    variable_of: dict          # (relation, tuple) -> variable id
    tuple_of: dict             # variable id -> (relation, tuple)
    factor_records: dict       # (rule, head var, weight id) -> FactorRecord
    #: grounding execution counters: ``n_workers`` plus, on the columnar
    #: engine, the shard-level counters (``partition_builds``,
    #: ``shard_probes``, ``shard_batches_merged``, ``degradations``)
    #: snapshotted from the columnar store after the ground.
    stats: dict = field(default_factory=dict)

    def variable(self, relation: str, row) -> int:
        return self.variable_of[(relation, tuple(row))]

    def compile(self):
        """Lower the grounded graph into its compiled substrate.

        The substrate owns graph state from here on (see
        ``CompiledFactorGraph.apply_delta``); bind it to an
        :class:`~repro.grounding.incremental.IncrementalGrounder` so
        updates patch it in place without materializing a graph copy.
        """
        from repro.graph.compiled import CompiledFactorGraph

        return CompiledFactorGraph(self.graph)

    def marginal_of(self, marginals, relation: str, row) -> float:
        return float(marginals[self.variable(relation, row)])


def _instantiate(atom, binding) -> tuple:
    return tuple(
        binding[a.name] if isinstance(a, Var) else a for a in atom.args
    )


# ---------------------------------------------------------------------- #
# Columnar helpers (shared by full and incremental grounding)
# ---------------------------------------------------------------------- #


def execute_body_columnar(db: Database, body, sources=None):
    """Evaluate a rule body into a :class:`BindingBatch` via a cached plan.

    ``sources`` maps atom index → :class:`ColumnarBatch` (delta
    relations); their signs multiply through the join.
    """
    store = db.columnar
    plan = store.plan(body, frozenset(sources or ()))
    return plan.execute(store, db, sources=sources)


def head_var_names(rule) -> tuple:
    """The names of the variables appearing in a rule's head atom."""
    return tuple(
        arg.name for arg in rule.head.args if isinstance(arg, Var)
    )


def full_body_batch(db: Database, rule, executor=None):
    """Canonical binding batch of a rule's full body join.

    Routes through the sharded executor when one is active (hash-
    partitioned parallel execution, shard-order merge), else the serial
    cached plan; either way the result is canonicalized
    (:func:`repro.db.plan.canonicalize_batch`), so downstream folding is
    bit-identical between the two paths.
    """
    from repro.db.plan import canonicalize_batch

    if executor is not None and executor.active:
        batch = executor.execute_full(db, rule.body, head_var_names(rule))
    else:
        batch = execute_body_columnar(db, rule.body)
    return canonicalize_batch(batch)


def signed_head_counts(db: Database, rule, batch) -> dict:
    """Fold a binding batch into ``{head tuple: signed count}``.

    UDF-free rules aggregate entirely in numpy (group-by over the head
    columns); UDF rules decode the batch once and expand per binding
    (UDFs are arbitrary Python and must see real values).
    """
    interner = db.columnar.interner
    if rule.udf is None and batch.num_rows < _BATCH_VECTOR_THRESHOLD:
        # Small batches: decode only the head columns, fold in Python.
        import itertools

        m = batch.num_rows
        cols = [
            interner.decode(batch.cols[arg.name])
            if isinstance(arg, Var)
            else itertools.repeat(arg, m)
            for arg in rule.head.args
        ]
        counts: dict = {}
        for row, sign in zip(zip(*cols), batch.signs.tolist()):
            counts[row] = counts.get(row, 0) + sign
        if not rule.head.args and m:  # zip(*[]) yields nothing
            counts[()] = int(batch.signs.sum())
        return {row: c for row, c in counts.items() if c != 0}
    if rule.udf is None:
        matrix = np.empty((batch.num_rows, len(rule.head.args)), dtype=np.int32)
        for i, arg in enumerate(rule.head.args):
            if isinstance(arg, Var):
                matrix[:, i] = batch.cols[arg.name]
            else:
                matrix[:, i] = interner.intern(arg)
        from repro.db.columnar import pack_rows

        if batch.num_rows == 0:
            return {}
        keys = pack_rows(matrix)
        _, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        sums = np.rint(
            np.bincount(inverse, weights=batch.signs.astype(np.float64))
        ).astype(np.int64)
        keep = np.flatnonzero(sums)
        rows = matrix[first[keep]]
        decoded = [
            interner.decode(rows[:, i]) for i in range(rows.shape[1])
        ]
        if not decoded:
            return {(): int(sums[keep][0])} if len(keep) else {}
        return dict(zip(zip(*decoded), sums[keep].tolist()))
    decoded = {
        name: interner.decode(col) for name, col in batch.cols.items()
    }
    names = list(decoded)
    signs = batch.signs.tolist()
    counts: dict = {}
    for i in range(batch.num_rows):
        binding = {name: decoded[name][i] for name in names}
        for expanded in rule.expanded_bindings(binding):
            row = rule.head_tuple(expanded)
            counts[row] = counts.get(row, 0) + signs[i]
    return {row: c for row, c in counts.items() if c != 0}


def apply_rule_bindings(
    rule: InferenceRule,
    semantics,
    signed_bindings,
    variable_relations,
    variable_of: dict,
    weights,
    records: dict,
    touched_keys: set | None = None,
    accumulator: "RuleDeltaAccumulator | None" = None,
) -> None:
    """Fold signed rule bindings into the factor records.

    Each binding contributes one grounding (the body's variable literals)
    to the record keyed by ``(rule, head var, weight id)``; negative signs
    retract a previously added grounding.  ``touched_keys``, when given,
    collects the record keys that changed (incremental bookkeeping).
    With an ``accumulator``, signed groundings are netted there instead
    of mutating records (the delta-subset summation path).
    """
    variable_atoms = [
        (pos, atom)
        for pos, atom in enumerate(rule.body)
        if atom.pred in variable_relations
    ]
    for binding, sign in signed_bindings:
        head_key = (rule.head.pred, rule.head_tuple(binding))
        weight_key = rule.weight.key_for(rule.name, binding)
        literals = tuple(
            (
                variable_of[(atom.pred, _instantiate(atom, binding))],
                pos not in rule.negated_positions,
            )
            for pos, atom in variable_atoms
        )
        if accumulator is not None:
            head_var = variable_of.get(head_key)
            if head_var is None:
                raise KeyError(
                    f"inference rule {rule.name!r} derives head tuple "
                    f"{head_key} that is not a grounded variable; add a "
                    "candidate (derivation) rule that creates it"
                )
            weight_id = weights.intern(
                weight_key, initial=rule.weight.value, fixed=rule.weight.fixed
            )
            accumulator.add(head_var, weight_id, literals, sign)
            continue
        _fold_grounding(
            rule, semantics, head_key, weight_key, literals, sign,
            variable_of, weights, records, touched_keys,
        )


class VariableCodeResolver:
    """Vectorized ``(variable relation, code row) → variable id`` maps.

    Built per ground / per update from ``variable_of``; per-relation maps
    (packed code bytes → id) are constructed lazily, so small updates
    whose batches take the row-at-a-time path never pay for them.
    """

    def __init__(self, interner, variable_of: dict) -> None:
        self._interner = interner
        self._variable_of = variable_of
        self._maps: dict = {}

    def _map(self, pred: str) -> dict:
        mp = self._maps.get(pred)
        if mp is None:
            from repro.db.columnar import pack_rows

            rows, vids = [], []
            for (rel, row), vid in self._variable_of.items():
                if rel == pred:
                    rows.append(row)
                    vids.append(vid)
            keys = (
                pack_rows(self._interner.encode_rows(rows)).tolist()
                if rows
                else []
            )
            mp = dict(zip(keys, vids))
            self._maps[pred] = mp
        return mp

    def _key_of(self, row: tuple):
        from repro.db.columnar import pack_row

        intern = self._interner.intern
        return pack_row([intern(v) for v in row])

    def add(self, pred: str, row: tuple, vid: int) -> None:
        """Keep an already-built map in sync with a new variable."""
        mp = self._maps.get(pred)
        if mp is not None:
            mp[self._key_of(row)] = vid

    def discard(self, pred: str, row: tuple) -> None:
        mp = self._maps.get(pred)
        if mp is not None:
            mp.pop(self._key_of(row), None)

    def resolve(
        self, rule_name: str, pred: str, matrix, is_head: bool = True
    ) -> np.ndarray:
        """Variable ids for every code row of ``matrix``.

        Missing rows raise the same errors as the row-at-a-time path:
        the "not a grounded variable" diagnosis for head atoms, a plain
        ``KeyError`` with the missing key for body literal atoms.
        """
        from repro.db.columnar import pack_rows

        mp = self._map(pred)
        keys = pack_rows(matrix).tolist()
        try:
            return np.fromiter(
                (mp[k] for k in keys), dtype=np.int64, count=len(keys)
            )
        except KeyError:
            for i, key in enumerate(keys):
                if key not in mp:
                    row = tuple(self._interner.decode(matrix[i]))
                    if not is_head:
                        raise KeyError((pred, row)) from None
                    raise KeyError(
                        f"inference rule {rule_name!r} derives head tuple "
                        f"{(pred, row)} that is not a grounded variable; "
                        "add a candidate (derivation) rule that creates it"
                    ) from None
            raise


def _atom_code_matrix(batch, interner, args) -> np.ndarray:
    """``(m, len(args))`` code matrix of an atom under a binding batch."""
    matrix = np.empty((batch.num_rows, len(args)), dtype=np.int32)
    for i, arg in enumerate(args):
        if isinstance(arg, Var):
            matrix[:, i] = batch.cols[arg.name]
        else:
            matrix[:, i] = interner.intern(arg)
    return matrix


#: Batches below this take the row-at-a-time fold (resolver maps would
#: cost more to build than they save).
_BATCH_VECTOR_THRESHOLD = 64


def apply_rule_binding_batch(
    rule: InferenceRule,
    semantics,
    batch,
    interner,
    variable_relations,
    variable_of: dict,
    weights,
    records: dict,
    touched_keys: set | None = None,
    resolver: VariableCodeResolver | None = None,
    accumulator: "RuleDeltaAccumulator | None" = None,
) -> None:
    """Batched :func:`apply_rule_bindings` over a columnar binding batch.

    Large batches ground without per-binding Python: head and literal
    variable ids resolve through packed-code maps, weight keys intern
    once per *distinct* tied-value row, and groundings fold into records
    one ``(head, weight)`` group at a time.  Small batches decode the
    code columns once and fold row-at-a-time.  With an ``accumulator``,
    signed groundings net there instead of mutating records.
    """
    m = batch.num_rows
    if m == 0:
        return
    if m >= _BATCH_VECTOR_THRESHOLD:
        if resolver is None:
            resolver = VariableCodeResolver(interner, variable_of)
        _apply_batch_vectorized(
            rule, semantics, batch, interner, variable_relations,
            weights, records, touched_keys, resolver, accumulator,
        )
        return
    decoded: dict = {}

    def column(name):
        col = decoded.get(name)
        if col is None:
            col = decoded[name] = interner.decode(batch.cols[name])
        return col

    head_cols = tuple(
        column(a.name) if isinstance(a, Var) else None for a in rule.head.args
    )
    head_args = rule.head.args
    head_pred = rule.head.pred
    tied_cols = tuple(column(v) for v in rule.weight.tied_on)
    rule_name = rule.name
    literal_atoms = []
    for pos, atom in enumerate(rule.body):
        if atom.pred not in variable_relations:
            continue
        arg_cols = tuple(
            (column(a.name), None) if isinstance(a, Var) else (None, a)
            for a in atom.args
        )
        literal_atoms.append(
            (atom.pred, arg_cols, pos not in rule.negated_positions)
        )
    signs = batch.signs.tolist()
    # Insertions fold before retractions so a batch that both adds and
    # removes the same grounding never transiently under-runs a record.
    row_order = range(m)
    if any(s < 0 for s in signs) and any(s > 0 for s in signs):
        row_order = sorted(row_order, key=lambda i: signs[i] < 0)
    for i in row_order:
        head_key = (
            head_pred,
            tuple(
                col[i] if col is not None else arg
                for col, arg in zip(head_cols, head_args)
            ),
        )
        weight_key = (rule_name, tuple(col[i] for col in tied_cols))
        literals = tuple(
            (
                variable_of[
                    (
                        pred,
                        tuple(
                            col[i] if col is not None else const
                            for col, const in arg_cols
                        ),
                    )
                ],
                positive,
            )
            for pred, arg_cols, positive in literal_atoms
        )
        if accumulator is not None:
            head_var = variable_of.get(head_key)
            if head_var is None:
                raise KeyError(
                    f"inference rule {rule_name!r} derives head tuple "
                    f"{head_key} that is not a grounded variable; add a "
                    "candidate (derivation) rule that creates it"
                )
            weight_id = weights.intern(
                weight_key, initial=rule.weight.value, fixed=rule.weight.fixed
            )
            accumulator.add(head_var, weight_id, literals, signs[i])
            continue
        _fold_grounding(
            rule, semantics, head_key, weight_key, literals, signs[i],
            variable_of, weights, records, touched_keys,
        )


def _apply_batch_vectorized(
    rule, semantics, batch, interner, variable_relations,
    weights, records, touched_keys, resolver: VariableCodeResolver,
    accumulator: "RuleDeltaAccumulator | None" = None,
) -> None:
    """Group a whole binding batch into factor records with numpy.

    Per-row Python is reduced to zipping pre-resolved literal id lists;
    head resolution, weight interning, and record grouping all run over
    arrays.  Signed batches fold insertions before retractions within
    each record group (same invariant as the row-at-a-time path).
    """
    import itertools

    m = batch.num_rows
    has_literals = any(
        atom.pred in variable_relations for atom in rule.body
    )
    if (
        not has_literals
        and accumulator is None
        and touched_keys is None
        and bool(np.all(batch.signs > 0))
    ):
        # Frequency-rule fast path (no body literals — every grounding
        # is the empty conjunction): group on the raw (head, tied) code
        # rows first, then resolve heads and intern weights once per
        # *group*; each record's groundings are just () × count.
        from repro.db.columnar import pack_rows

        head_width = len(rule.head.args)
        matrix = np.empty(
            (m, head_width + len(rule.weight.tied_on)), dtype=np.int32
        )
        for i, arg in enumerate(rule.head.args):
            if isinstance(arg, Var):
                matrix[:, i] = batch.cols[arg.name]
            else:
                matrix[:, i] = interner.intern(arg)
        for i, name in enumerate(rule.weight.tied_on):
            matrix[:, head_width + i] = batch.cols[name]
        _, first, counts = np.unique(
            pack_rows(matrix), return_index=True, return_counts=True
        )
        head_vids = resolver.resolve(
            rule.name, rule.head.pred, matrix[first][:, :head_width]
        ).tolist()
        counts = counts.tolist()
        rule_name = rule.name
        initial, fixed = rule.weight.value, rule.weight.fixed
        if rule.weight.tied_on:
            tied_rows = matrix[first][:, head_width:]
            wids = [
                weights.intern(
                    (rule_name, tuple(interner.decode(tied_rows[gi]))),
                    initial=initial,
                    fixed=fixed,
                )
                for gi in range(len(first))
            ]
        else:
            wid = weights.intern((rule_name, ()), initial=initial, fixed=fixed)
            wids = [wid] * len(first)
        for gi in range(len(first)):
            record_key = (rule_name, head_vids[gi], wids[gi])
            record = records.get(record_key)
            if record is None:
                records[record_key] = FactorRecord(
                    rule_name=rule_name,
                    head_var=head_vids[gi],
                    weight_id=wids[gi],
                    semantics=semantics,
                    groundings=[()] * counts[gi],
                )
            else:
                record.groundings.extend([()] * counts[gi])
        return
    # Head variable ids (vectorized resolve, same KeyError contract).
    head_vids = resolver.resolve(
        rule.name,
        rule.head.pred,
        _atom_code_matrix(batch, interner, rule.head.args),
    )
    # Weight ids: intern once per distinct tied-value row.
    if rule.weight.tied_on:
        tied = np.empty((m, len(rule.weight.tied_on)), dtype=np.int32)
        for i, name in enumerate(rule.weight.tied_on):
            tied[:, i] = batch.cols[name]
        from repro.db.columnar import pack_rows

        _, first, inverse = np.unique(
            pack_rows(tied), return_index=True, return_inverse=True
        )
        distinct_wids = np.empty(len(first), dtype=np.int64)
        for gi, row_i in enumerate(first.tolist()):
            key = (rule.name, tuple(interner.decode(tied[row_i])))
            distinct_wids[gi] = weights.intern(
                key, initial=rule.weight.value, fixed=rule.weight.fixed
            )
        wids = distinct_wids[inverse]
    else:
        wid = weights.intern(
            (rule.name, ()), initial=rule.weight.value, fixed=rule.weight.fixed
        )
        wids = np.full(m, wid, dtype=np.int64)
    # Literal tuples: one (vid, positive) pair list per variable atom,
    # zipped row-wise into grounding tuples.
    pair_lists = []
    for pos, atom in enumerate(rule.body):
        if atom.pred not in variable_relations:
            continue
        vids = resolver.resolve(
            rule.name,
            atom.pred,
            _atom_code_matrix(batch, interner, atom.args),
            is_head=False,
        )
        positive = pos not in rule.negated_positions
        pair_lists.append(
            list(zip(vids.tolist(), itertools.repeat(positive)))
        )
    if pair_lists:
        literals = list(zip(*pair_lists))
    else:
        literals = [()] * m
    if accumulator is not None:
        add = accumulator.add
        head_list = head_vids.tolist()
        wid_list = wids.tolist()
        signs = batch.signs.tolist()
        for i in range(m):
            add(head_list[i], wid_list[i], literals[i], signs[i])
        return
    # Group rows by (head, weight) and fold each group into its record.
    group_codes = (head_vids << 31) | wids
    head_list = head_vids.tolist()
    wid_list = wids.tolist()
    all_positive = bool(np.all(batch.signs > 0))
    rule_name = rule.name
    order = np.argsort(group_codes, kind="stable")
    ordered = group_codes[order]
    boundaries = np.flatnonzero(ordered[1:] != ordered[:-1])
    if all_positive and touched_keys is None and len(boundaries) + 1 == m:
        # Full-ground fast path: every binding is its own record (no
        # grouping, no multiset) — the dominant shape for per-binding
        # weight tying.
        for i in range(m):
            record_key = (rule_name, head_list[i], wid_list[i])
            record = records.get(record_key)
            if record is None:
                records[record_key] = FactorRecord(
                    rule_name=rule_name,
                    head_var=head_list[i],
                    weight_id=wid_list[i],
                    semantics=semantics,
                    groundings=[literals[i]],
                )
            else:
                record.groundings.append(literals[i])
        return
    starts = np.concatenate(([0], boundaries + 1, [m])).tolist()
    order = order.tolist()
    literals_ordered = [literals[i] for i in order]
    signs = batch.signs.tolist()
    for gi in range(len(starts) - 1):
        lo, hi = starts[gi], starts[gi + 1]
        row0 = order[lo]
        record_key = (rule_name, head_list[row0], wid_list[row0])
        record = records.get(record_key)
        if record is None:
            record = FactorRecord(
                rule_name=rule_name,
                head_var=record_key[1],
                weight_id=record_key[2],
                semantics=semantics,
            )
            if touched_keys is not None:  # incremental: counted multiset
                record.groundings = GroundingMultiset()
            records[record_key] = record
        if touched_keys is not None:
            touched_keys.add(record_key)
        groundings = record.groundings
        if all_positive:
            groundings.extend(literals_ordered[lo:hi])
            continue
        removals = []
        for oi in range(lo, hi):
            i = order[oi]
            sign = signs[i]
            if sign > 0:
                for _ in range(sign):
                    groundings.append(literals_ordered[oi])
            else:
                removals.append(oi)
        for oi in removals:
            i = order[oi]
            for _ in range(-signs[i]):
                groundings.remove(literals_ordered[oi])


def _fold_grounding(
    rule, semantics, head_key, weight_key, literals, sign,
    variable_of, weights, records, touched_keys,
) -> None:
    """Fold one signed grounding into its ``(rule, head, weight)`` record."""
    head_var = variable_of.get(head_key)
    if head_var is None:
        raise KeyError(
            f"inference rule {rule.name!r} derives head tuple "
            f"{head_key} that is not a grounded variable; add a "
            "candidate (derivation) rule that creates it"
        )
    weight_id = weights.intern(
        weight_key, initial=rule.weight.value, fixed=rule.weight.fixed
    )
    _fold_into_record(
        rule.name, semantics, head_var, weight_id, literals, sign,
        records, touched_keys,
    )


def _fold_into_record(
    rule_name, semantics, head_var, weight_id, literals, count,
    records, touched_keys,
) -> None:
    record_key = (rule_name, head_var, weight_id)
    record = records.get(record_key)
    if record is None:
        record = FactorRecord(
            rule_name=rule_name,
            head_var=head_var,
            weight_id=weight_id,
            semantics=semantics,
        )
        if touched_keys is not None:  # incremental: counted multiset
            record.groundings = GroundingMultiset()
        records[record_key] = record
    if touched_keys is not None:
        touched_keys.add(record_key)
    if count > 0:
        for _ in range(count):
            record.groundings.append(literals)
    else:
        for _ in range(-count):
            record.groundings.remove(literals)


class RuleDeltaAccumulator:
    """Nets one rule's signed groundings across all delta subset terms.

    The counting identity ``Δ(A₁⋈…⋈A_k) = Σ_S ±(⋈Δ/⋈new)`` only
    guarantees non-negative grounding counts for the *sum*; an
    individual subset term may retract a grounding that a later term
    re-inserts.  Folding term-by-term can therefore transiently
    under-run a record (a latent crash in the pre-columnar engine);
    accumulating the net per ``(head, weight, literals)`` and flushing
    once — insertions before retractions — is always safe.
    """

    def __init__(self) -> None:
        self._net: dict = {}

    def add(self, head_var, weight_id, literals, count) -> None:
        key = (head_var, weight_id, literals)
        total = self._net.get(key, 0) + count
        if total:
            self._net[key] = total
        else:
            self._net.pop(key, None)

    def flush(self, rule_name, semantics, records, touched_keys) -> None:
        entries = sorted(self._net.items(), key=lambda kv: kv[1] < 0)
        self._net = {}
        for (head_var, weight_id, literals), count in entries:
            _fold_into_record(
                rule_name, semantics, head_var, weight_id, literals,
                count, records, touched_keys,
            )


class Grounder:
    """Grounds ``program`` over ``db`` from scratch.

    ``engine`` selects the join engine: ``"columnar"`` (vectorized plans,
    the default) or ``"legacy"`` (tuple-at-a-time slow path / oracle).
    ``n_workers > 1`` executes every body join as hash-partitioned shard
    executions on a worker pool (:class:`~repro.grounding.sharded.
    ShardedGroundingExecutor`) — bit-identical output by construction;
    ``n_workers=1`` is exactly the serial code path (no executor, no
    pool).  Callers owning a multi-worker grounder should :meth:`close`
    it (or hand the executor off) to reap the pool processes.
    """

    def __init__(
        self,
        program: Program,
        db: Database,
        engine: str = "columnar",
        n_workers: int = 1,
        executor=None,
        ctx=None,
        command_timeout: float | None = None,
        retry=None,
    ) -> None:
        if engine not in _ENGINES:
            raise ValueError(f"unknown grounding engine {engine!r}")
        self.program = program
        self.db = db
        self.engine = engine
        self.n_workers = int(n_workers)
        self._resolver: VariableCodeResolver | None = None
        self._executor = executor
        self._owns_executor = False
        if self._executor is None and self.n_workers > 1:
            if engine != "columnar":
                raise ValueError(
                    "sharded grounding (n_workers > 1) requires the "
                    "columnar engine"
                )
            from repro.grounding.sharded import ShardedGroundingExecutor

            self._executor = ShardedGroundingExecutor(
                db,
                self.n_workers,
                ctx=ctx,
                command_timeout=command_timeout,
                retry=retry,
            )
            self._owns_executor = True

    @property
    def executor(self):
        """The sharded executor (``None`` on the serial path)."""
        return self._executor

    def close(self) -> None:
        """Shut down an owned sharded executor's worker pool."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
            self._owns_executor = False

    # ------------------------------------------------------------------ #

    def run_derivation_rules(self) -> None:
        """Evaluate all derivation rules, accumulating derivation counts."""
        for rule in self.program.stratified_derivation_rules():
            relation = self.db.relation(rule.head.pred)
            if self.engine == "columnar":
                batch = full_body_batch(self.db, rule, self._executor)
                relation.bulk_insert_counts(
                    signed_head_counts(self.db, rule, batch)
                )
            else:
                for binding, sign in evaluate_query(self.db, rule.body):
                    for expanded in rule.expanded_bindings(binding):
                        relation.insert(rule.head_tuple(expanded), count=sign)

    def create_variables(self, graph: FactorGraph) -> tuple:
        variable_of: dict = {}
        tuple_of: dict = {}
        for relation_name in sorted(self.program.variable_relations):
            names = [
                (relation_name, row)
                for row in sorted(self.db.relation(relation_name).rows())
            ]
            vids = graph.add_named_variables(names)
            variable_of.update(zip(names, vids))
            tuple_of.update(zip(vids, names))
        return variable_of, tuple_of

    def apply_evidence(self, graph: FactorGraph, variable_of: dict) -> None:
        for relation_name in self.program.variable_relations:
            ev_name = relation_name + EVIDENCE_SUFFIX
            if not self.db.has_relation(ev_name):
                continue
            for row in self.db.relation(ev_name).rows():
                key = (relation_name, row[:-1])
                vid = variable_of.get(key)
                if vid is not None:
                    graph.set_evidence(vid, bool(row[-1]))

    def ground_inference_rule(
        self,
        rule: InferenceRule,
        graph: FactorGraph,
        variable_of: dict,
        records: dict,
        sources=None,
    ) -> None:
        """Ground one inference rule; ``sources`` supports delta joins."""
        semantics = self.program.semantics_of(rule)
        if self.engine == "columnar" and sources is None:
            batch = full_body_batch(self.db, rule, self._executor)
            apply_rule_binding_batch(
                rule,
                semantics,
                batch,
                self.db.columnar.interner,
                self.program.variable_relations,
                variable_of,
                graph.weights,
                records,
                resolver=self._resolver,
            )
            return
        apply_rule_bindings(
            rule,
            semantics,
            evaluate_query(self.db, rule.body, sources=sources),
            self.program.variable_relations,
            variable_of,
            graph.weights,
            records,
        )

    # ------------------------------------------------------------------ #

    def ground(self) -> GroundingResult:
        """Run all phases and return the grounded graph + maps."""
        self.run_derivation_rules()
        graph = FactorGraph()
        variable_of, tuple_of = self.create_variables(graph)
        self.apply_evidence(graph, variable_of)
        records: dict = {}
        if self.engine == "columnar":
            # One resolver for the whole ground: its per-relation packed
            # code maps are shared across every inference rule.
            self._resolver = VariableCodeResolver(
                self.db.columnar.interner, variable_of
            )
        for rule in self.program.inference_rules:
            self.ground_inference_rule(rule, graph, variable_of, records)
        self._resolver = None
        # Trusted frozen-factor append: records hold resolved int ids and
        # coerced semantics; validate() below checks the result.
        factors = graph.factors
        for record in records.values():
            record.factor_index = len(factors)
            factors.append(
                RuleFactor(
                    weight_id=record.weight_id,
                    head=record.head_var,
                    groundings=tuple(record.groundings),
                    semantics=record.semantics,
                )
            )
        graph.validate()
        stats: dict = {"n_workers": self.n_workers}
        if self.engine == "columnar":
            store_stats = self.db.columnar.stats
            for key in (
                "partition_builds",
                "shard_probes",
                "shard_batches_merged",
                "degradations",
            ):
                stats[key] = store_stats.get(key, 0)
        return GroundingResult(
            graph=graph,
            variable_of=variable_of,
            tuple_of=tuple_of,
            factor_records=records,
            stats=stats,
        )
