"""Persistent incremental learning on the patched substrate.

The tentpole invariants of the patchable learner:

* the compiled, vectorised gradient aggregation
  (``CompiledFactorGraph.weight_statistics`` + live per-weight factor
  counts) must equal the Python per-factor slow path on random graphs and
  worlds — including after arbitrary ``apply_delta`` sequences and
  compactions;
* a learner carried across a patch with ``SGDLearner.apply_patch`` must
  behave like a freshly constructed learner on the patched graph
  (identical gradients for identical worlds; loss trajectories within
  tolerance);
* the pool-backed chain pair must survive a patch in place (same worker
  PIDs) and keep learning;
* the live-cache pseudo-NLL must match the old fresh-cache path.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.graph import FactorGraph, FactorGraphDelta, Semantics
from repro.graph.compiled import CompiledFactorGraph
from repro.graph.factor_graph import BiasFactor
from repro.learning import SGDLearner
from repro.learning.gradient import (
    factor_counts_per_weight,
    weight_gradient,
    weight_statistics,
)

from tests.test_incremental_compile import random_delta, seed_graph


def labeled_bias_graph(p_true=0.8, n=40, extra_free=5):
    """Labelled examples tied to one bias weight, plus free probes."""
    fg = FactorGraph()
    wid = fg.weights.intern("bias", initial=0.0)
    num_pos = int(round(p_true * n))
    for i in range(n):
        v = fg.add_variable(evidence=i < num_pos)
        fg.add_bias_factor(wid, v)
    for _ in range(extra_free):
        v = fg.add_variable()
        fg.add_bias_factor(wid, v)
    return fg, wid


def new_examples_delta(graph, step, k=10, pos=7):
    """An F2+S2-style update: a new feature weight + new labelled vars."""
    delta = FactorGraphDelta()
    nw = len(graph.weights)
    delta.new_weight_entries.append((("feat", step), 0.0, False))
    delta.num_new_vars = k
    for j in range(k):
        delta.new_factors.append(BiasFactor(weight_id=nw, var=graph.num_vars + j))
        delta.new_var_evidence[j] = j < pos
    return delta


class TestCompiledWeightStatistics:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_python_loop_on_random_graph(self, seed):
        graph = seed_graph(seed=seed)
        # Force a slow-path factor (head appears in its own body).
        w = graph.weights.intern(("slow", seed), initial=0.2)
        graph.add_rule_factor(
            w, 4, [[(4, True), (8, True)], [(9, False)]], Semantics.LOGICAL
        )
        compiled = CompiledFactorGraph(graph)
        rng = np.random.default_rng(seed)
        worlds = rng.random((6, graph.num_vars)) < 0.5
        fast = weight_statistics(graph, worlds, compiled=compiled)
        slow = weight_statistics(graph, worlds)
        assert np.allclose(fast, slow, rtol=1e-9, atol=1e-9)
        assert np.array_equal(
            factor_counts_per_weight(graph, compiled=compiled),
            factor_counts_per_weight(graph),
        )

    def test_single_world_vector_accepted(self):
        graph = seed_graph(seed=1)
        compiled = CompiledFactorGraph(graph)
        world = np.zeros(graph.num_vars, dtype=bool)
        assert np.allclose(
            weight_statistics(graph, world, compiled=compiled),
            weight_statistics(graph, world),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_after_random_patches(self, seed):
        """Patched flat arrays (tombstones + appends + compactions) keep
        the compiled statistics equal to the slow path on the updated
        graph."""
        rng = np.random.default_rng(100 + seed)
        graph = seed_graph(seed=seed)
        compiled = CompiledFactorGraph(graph)
        for step in range(6):
            delta = random_delta(graph, rng, step)
            updated = delta.apply(graph)
            # Alternate between pure patching and threshold compaction.
            threshold = 1.0 if step % 3 else 0.2
            compiled.apply_delta(delta, compact_threshold=threshold)
            graph = updated
            worlds = rng.random((4, graph.num_vars)) < 0.5
            assert np.allclose(
                weight_statistics(graph, worlds, compiled=compiled),
                weight_statistics(graph, worlds),
                rtol=1e-9,
                atol=1e-9,
            )
            assert np.array_equal(
                factor_counts_per_weight(graph, compiled=compiled),
                factor_counts_per_weight(graph),
            )

    def test_gradient_parity_with_l2_and_fixed_weights(self):
        graph = seed_graph(seed=2)
        hard = graph.weights.intern("hard", initial=2.0, fixed=True)
        graph.add_bias_factor(hard, 3)
        compiled = CompiledFactorGraph(graph)
        rng = np.random.default_rng(2)
        cond = rng.random((5, graph.num_vars)) < 0.5
        free = rng.random((5, graph.num_vars)) < 0.5
        fast = weight_gradient(graph, cond, free, l2=0.01, compiled=compiled)
        slow = weight_gradient(graph, cond, free, l2=0.01)
        assert np.allclose(fast, slow, rtol=1e-9, atol=1e-9)
        assert fast[hard] == 0.0


class TestPatchedLearnerEquivalence:
    def test_gradient_parity_after_patch_sequence(self):
        """The learner's patched compilation produces the same gradients
        as a fresh compile of the final graph."""
        rng = np.random.default_rng(7)
        graph = seed_graph(seed=7)
        for v in range(0, 12, 3):
            graph.set_evidence(v, bool(rng.integers(2)))
        compiled = CompiledFactorGraph(graph)
        learner = SGDLearner(graph, seed=0, compiled=compiled)
        for step in range(4):
            delta = random_delta(graph, rng, step)
            updated = delta.apply(graph)
            patch = compiled.apply_delta(delta, compact_threshold=1.0)
            learner.apply_patch(patch)
            graph = updated
            learner.fit(2, record_loss=False)  # exercise warm chains
        assert learner.graph is compiled.graph
        assert not learner.free_graph.evidence
        assert learner.free_graph.num_vars == graph.num_vars
        fresh = CompiledFactorGraph(graph)
        cond = rng.random((6, graph.num_vars)) < 0.5
        free = rng.random((6, graph.num_vars)) < 0.5
        assert np.allclose(
            weight_gradient(graph, cond, free, compiled=compiled),
            weight_gradient(graph, cond, free, compiled=fresh),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_loss_trajectory_matches_fresh_learner(self):
        """Warm patched learner ≈ freshly constructed learner on the
        patched graph (same pretrained weights): the loss trajectories
        agree within sampling noise."""
        fg, wid = labeled_bias_graph()
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        learner.fit(40, record_loss=False)

        delta = new_examples_delta(learner.graph, 0)
        updated = delta.apply(learner.graph)
        patch = learner._compiled.apply_delta(delta)
        learner.apply_patch(patch)

        fresh = SGDLearner(updated.copy(), step_size=0.3, seed=1, l2=0.0)
        warm_hist = learner.fit(25)
        fresh_hist = fresh.fit(25)
        assert abs(warm_hist.losses[0] - fresh_hist.losses[0]) < 0.05
        assert abs(warm_hist.final_loss() - fresh_hist.final_loss()) < 0.05
        # Both land near the same learned weights.
        for w in range(len(updated.weights)):
            assert abs(
                learner.graph.weights.value(w) - fresh.graph.weights.value(w)
            ) < 0.25

    def test_pool_chain_pair_survives_patch(self):
        """n_workers=2 learner: both worker processes survive the patch
        (same PIDs), keep learning, and agree with the serial learner."""
        fg, wid = labeled_bias_graph(n=30, extra_free=2)
        with SGDLearner(fg, step_size=0.3, seed=0, l2=0.0, n_workers=2) as learner:
            pids = learner._pool.pids()
            learner.fit(20, record_loss=False)
            delta = new_examples_delta(learner.graph, 0, k=8, pos=6)
            updated = delta.apply(learner.graph)
            patch = learner._compiled.apply_delta(delta)
            learner.apply_patch(patch)
            assert learner._pool.pids() == pids
            learner.fit(40, record_loss=False)
            assert learner._pool.pids() == pids
            # New feature weight learned towards its MLE
            # (sigmoid(2w) = 6/8 → w ≈ 0.55).
            nw = len(updated.weights) - 1
            assert learner.graph.weights.value(nw) == pytest.approx(0.55, abs=0.3)
            # Conditioned-chain marginal state stays evidence-consistent.
            state = learner._pool.call(0, "chain_states", chain_ids=[0])[0]
            for var, val in learner.graph.evidence.items():
                assert bool(state[var]) == val

    def test_pool_matches_serial_learning(self):
        fg, wid = labeled_bias_graph(n=30, extra_free=0)
        serial_graph = fg.copy()
        SGDLearner(serial_graph, step_size=0.3, seed=0, l2=0.0).fit(
            40, record_loss=False
        )
        with SGDLearner(fg, step_size=0.3, seed=0, l2=0.0, n_workers=2) as learner:
            learner.fit(40, record_loss=False)
        assert fg.weights.value(wid) == pytest.approx(
            serial_graph.weights.value(wid), abs=0.15
        )


class TestEvidencePseudoNLL:
    def test_live_cache_matches_fresh_path(self):
        """Satellite (perf): the O(|evidence|) live-cache scorer returns
        the same value as the old build-a-cache-per-call path."""
        fg, _ = labeled_bias_graph()
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        learner.fit(5, record_loss=False)
        live = learner.evidence_pseudo_nll()
        fresh = learner.evidence_pseudo_nll(fresh_cache=True)
        assert live == pytest.approx(fresh, abs=1e-9)
        # After a weight mutation between epochs the scorer must refresh.
        fg.weights.set_value(0, fg.weights.value(0) + 0.3)
        assert learner.evidence_pseudo_nll() == pytest.approx(
            learner.evidence_pseudo_nll(fresh_cache=True), abs=1e-9
        )

    def test_live_cache_matches_on_structured_graph(self):
        rng = np.random.default_rng(5)
        graph = seed_graph(seed=5)
        for v in range(0, 16, 2):
            graph.set_evidence(v, bool(rng.integers(2)))
        learner = SGDLearner(graph, seed=0)
        learner.fit(3, record_loss=False)
        assert learner.evidence_pseudo_nll() == pytest.approx(
            learner.evidence_pseudo_nll(fresh_cache=True), abs=1e-8
        )

    def test_live_cache_matches_after_patch(self):
        fg, _ = labeled_bias_graph()
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        learner.fit(5, record_loss=False)
        delta = new_examples_delta(learner.graph, 0)
        updated = delta.apply(learner.graph)
        patch = learner._compiled.apply_delta(delta)
        learner.apply_patch(patch)
        assert learner.evidence_pseudo_nll() == pytest.approx(
            learner.evidence_pseudo_nll(fresh_cache=True), abs=1e-9
        )

    def test_loss_recording_builds_no_fresh_cache(self, monkeypatch):
        """Regression (perf): ``fit(record_loss=True)`` used to construct
        a fresh O(graph) GibbsCache per epoch just to score the loss; it
        must now reuse the conditioned chain's live cache."""
        from repro.graph.compiled import GibbsCache

        fg, _ = labeled_bias_graph()
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        builds = []
        real_init = GibbsCache.__init__

        def counting_init(cache, compiled, assignment):
            builds.append(1)
            real_init(cache, compiled, assignment)

        monkeypatch.setattr(
            "repro.graph.compiled.GibbsCache.__init__", counting_init
        )
        learner.fit(5, record_loss=True)
        assert not builds

    def test_pool_live_matches_fresh(self):
        fg, _ = labeled_bias_graph(n=24, extra_free=0)
        with SGDLearner(fg, step_size=0.3, seed=0, l2=0.0, n_workers=2) as learner:
            learner.fit(4, record_loss=False)
            assert learner.evidence_pseudo_nll() == pytest.approx(
                learner.evidence_pseudo_nll(fresh_cache=True), abs=1e-9
            )


class TestEngineRelearn:
    def _delta(self, graph, step):
        return new_examples_delta(graph, step, k=8, pos=6)

    def test_rerun_engine_warm_relearn(self):
        fg, wid = labeled_bias_graph()
        with RerunEngine(
            fg, EngineConfig(seed=0, inference_samples=5, burn_in=2)
        ) as engine:
            engine.relearn(30, record_loss=False)
            assert (engine.learns_warm, engine.learns_cold) == (0, 1)
            engine.apply_update(self._delta(engine.current_graph, 0))
            assert engine.updates_patched == 1
            hist = engine.relearn(15)
            assert (engine.learns_warm, engine.learns_cold) == (1, 1)
            assert hist.final_loss() < 0.75
            # Learned weights visible on the engine's live graph.
            assert engine.current_graph.weights.value(wid) > 0.3

    def test_rerun_engine_cold_lesion_zeroes_weights(self):
        fg, wid = labeled_bias_graph()
        with RerunEngine(
            fg,
            EngineConfig(
                seed=0, inference_samples=5, burn_in=2, warm_learning=False
            ),
        ) as engine:
            engine.relearn(30, record_loss=False)
            learned = engine.current_graph.weights.value(wid)
            assert learned > 0.3
            engine.apply_update(self._delta(engine.current_graph, 0))
            engine.relearn(1, record_loss=False)
            # The cold restart re-zeroed the pretrained weight first.
            assert (engine.learns_warm, engine.learns_cold) == (0, 2)
            assert abs(engine.current_graph.weights.value(wid)) < learned

    def test_incremental_engine_warm_relearn_across_updates(self):
        fg, wid = labeled_bias_graph()
        cfg = EngineConfig(
            seed=0, materialization_samples=40, inference_steps=10, burn_in=2
        )
        with IncrementalEngine(fg, cfg) as engine:
            engine.materialize()
            engine.relearn(30, record_loss=False)
            for step in range(3):
                engine.apply_update(self._delta(engine.current_graph, step))
                engine.relearn(8, record_loss=False)
            assert (engine.learns_warm, engine.learns_cold) == (3, 1)
            assert engine._learn_compiled.num_vars == engine.current_graph.num_vars
            # Every interned feature weight moved towards its MLE sign.
            for step in range(3):
                wid_step = engine.current_graph.weights.id_for(("feat", step))
                assert engine.current_graph.weights.value(wid_step) > 0.0

    def test_pool_relearn_compaction_resyncs_engine_sampler(self):
        """A pool-backed ``relearn(n_workers=2)`` compacts the shared
        compilation (the export needs a clean CSR snapshot); the engine's
        persistent sampler must be re-derived, not left indexing the
        pre-compaction tombstoned layout."""
        from repro.graph import Semantics

        fg, wid = labeled_bias_graph(n=24, extra_free=4)
        w_rule = fg.weights.intern("rule", initial=0.3)
        # Two rules: removing the first shifts the survivor's compiled
        # rule/grounding ids when the compaction lands.
        rule_fi = fg.add_rule_factor(
            w_rule, 25, [[(0, True)], [(1, True)]], Semantics.RATIO
        )
        fg.add_rule_factor(
            w_rule, 26, [[(2, True), (3, True)], [(27, False)]], Semantics.RATIO
        )
        with RerunEngine(
            fg,
            EngineConfig(
                seed=0, inference_samples=5, burn_in=2, compact_threshold=1.0
            ),
        ) as engine:
            engine.apply_update(FactorGraphDelta())  # prime compile
            # Structural delta leaving tombstones behind.
            delta = FactorGraphDelta(removed_factor_ids={rule_fi})
            engine.apply_update(delta)
            assert engine._compiled.has_patches
            engine.relearn(3, record_loss=False, n_workers=2)
            assert not engine._compiled.has_patches  # export compacted
            # Pre-fix this splice landed on the compacted arrays with a
            # cache still sized/ordered for the tombstoned layout.
            out = engine.apply_update(self._delta(engine.current_graph, 0))
            assert out.marginals.shape[0] == engine.current_graph.num_vars
            engine._sampler.cache.check_consistency(engine._sampler.state)
            engine.relearn(3, record_loss=False)

    def test_incremental_engine_relearn_does_not_touch_base_graph(self):
        fg, wid = labeled_bias_graph()
        cfg = EngineConfig(
            seed=0, materialization_samples=40, inference_steps=10, burn_in=2
        )
        with IncrementalEngine(fg, cfg) as engine:
            engine.materialize()
            engine.relearn(20, record_loss=False)
            assert engine.base_graph.weights.value(wid) == 0.0
            assert engine.current_graph.weights.value(wid) > 0.2
