"""Tests for FactorGraphDelta: application, classification, composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BiasFactor, FactorGraph, FactorGraphDelta, IsingFactor
from repro.graph.delta import compose_deltas
from repro.graph.delta_energy import DeltaEvaluator

from tests.helpers import chain_ising_graph, random_pairwise_graph


def bias_factor_for(graph, var, weight, key):
    wid = graph.weights.intern(key, initial=weight)
    return BiasFactor(weight_id=wid, var=var)


class TestDeltaApply:
    def test_add_variables_and_factors(self):
        fg = chain_ising_graph(3)
        delta = FactorGraphDelta(num_new_vars=2, new_var_names=["a", "b"])
        delta.new_weight_entries.append(("new", 0.5, False))
        wid = len(fg.weights)
        delta.new_factors.append(BiasFactor(weight_id=wid, var=3))
        delta.new_factors.append(IsingFactor(weight_id=wid, i=3, j=4))
        updated = delta.apply(fg)
        assert updated.num_vars == 5
        assert updated.num_factors == fg.num_factors + 2
        assert updated.name_of(3) == "a"
        assert fg.num_vars == 3  # base untouched

    def test_remove_factors(self):
        fg = chain_ising_graph(3)
        delta = FactorGraphDelta(removed_factor_ids={0})
        updated = delta.apply(fg)
        assert updated.num_factors == fg.num_factors - 1

    def test_evidence_updates(self):
        fg = chain_ising_graph(3)
        fg.set_evidence(0, True)
        delta = FactorGraphDelta(evidence_updates={0: None, 1: False})
        updated = delta.apply(fg)
        assert not updated.is_evidence(0)
        assert updated.evidence_value(1) is False

    def test_new_var_evidence(self):
        fg = chain_ising_graph(2)
        delta = FactorGraphDelta(num_new_vars=1, new_var_evidence={0: True})
        updated = delta.apply(fg)
        assert updated.evidence_value(2) is True

    def test_weight_changes(self):
        fg = chain_ising_graph(2, coupling=0.5)
        delta = FactorGraphDelta(changed_weight_values={0: 2.0})
        updated = delta.apply(fg)
        assert updated.weights.value(0) == 2.0
        assert fg.weights.value(0) == 0.5

    def test_classification_flags(self):
        assert FactorGraphDelta().is_empty
        assert FactorGraphDelta(num_new_vars=1).changes_structure
        assert FactorGraphDelta(evidence_updates={0: True}).changes_evidence
        assert FactorGraphDelta(
            new_weight_entries=[("k", 0.0, False)]
        ).adds_features
        assert not FactorGraphDelta(evidence_updates={0: True}).changes_structure

    def test_index_mapping(self):
        delta = FactorGraphDelta(removed_factor_ids={1, 3})
        mapping = delta.index_mapping(5)
        assert mapping == {0: 0, 2: 1, 4: 2}


class TestDeltaEvaluator:
    def test_delta_energy_matches_graph_difference(self):
        fg = chain_ising_graph(4, coupling=0.7, bias=0.2)
        delta = FactorGraphDelta(removed_factor_ids={0})
        delta.new_weight_entries.append(("extra", 1.1, False))
        delta.new_factors.append(BiasFactor(weight_id=len(fg.weights), var=2))
        evaluator = DeltaEvaluator(fg, delta)
        updated = delta.apply(fg)
        rng = np.random.default_rng(0)
        for _ in range(20):
            world = rng.random(4) < 0.5
            assert evaluator.delta_energy(world) == pytest.approx(
                updated.energy(world) - fg.energy(world)
            )

    def test_delta_energy_with_new_vars(self):
        fg = chain_ising_graph(2, coupling=0.5, bias=0.0)
        delta = FactorGraphDelta(num_new_vars=1)
        delta.new_weight_entries.append(("J", 0.9, False))
        delta.new_factors.append(IsingFactor(weight_id=len(fg.weights), i=1, j=2))
        evaluator = DeltaEvaluator(fg, delta)
        updated = delta.apply(fg)
        rng = np.random.default_rng(1)
        for _ in range(10):
            world = rng.random(3) < 0.5
            base_world = world[:2]
            assert evaluator.delta_energy(world) == pytest.approx(
                updated.energy(world) - fg.energy(base_world)
            )

    def test_reweighted_factor_shift(self):
        fg = chain_ising_graph(2, coupling=0.5, bias=0.3)
        delta = FactorGraphDelta(changed_weight_values={0: 1.5})
        evaluator = DeltaEvaluator(fg, delta)
        updated = delta.apply(fg)
        world = np.array([True, False])
        assert evaluator.delta_energy(world) == pytest.approx(
            updated.energy(world) - fg.energy(world)
        )

    def test_evidence_violation_detected(self):
        fg = chain_ising_graph(2)
        delta = FactorGraphDelta(evidence_updates={0: True})
        evaluator = DeltaEvaluator(fg, delta)
        assert evaluator.violates_evidence(np.array([False, True]))
        assert not evaluator.violates_evidence(np.array([True, False]))
        assert evaluator.log_density_ratio(np.array([False, True])) == float(
            "-inf"
        )

    def test_extend_world_respects_new_evidence(self):
        fg = chain_ising_graph(2)
        delta = FactorGraphDelta(num_new_vars=2, new_var_evidence={1: True})
        evaluator = DeltaEvaluator(fg, delta)
        rng = np.random.default_rng(0)
        world = evaluator.extend_world(np.array([True, False]), rng)
        assert len(world) == 4
        assert world[3] == True  # noqa: E712 — clamped new var


def random_delta(fg, seed):
    """A random delta against ``fg`` touching several dimensions."""
    rng = np.random.default_rng(seed)
    delta = FactorGraphDelta()
    if rng.random() < 0.6 and fg.num_factors:
        delta.removed_factor_ids = set(
            int(i)
            for i in rng.choice(
                fg.num_factors, size=min(2, fg.num_factors), replace=False
            )
        )
    delta.num_new_vars = int(rng.integers(0, 3))
    next_wid = len(fg.weights)
    if rng.random() < 0.8:
        delta.new_weight_entries.append((("w", seed), float(rng.normal()), False))
        var = int(rng.integers(fg.num_vars + delta.num_new_vars))
        delta.new_factors.append(BiasFactor(weight_id=next_wid, var=var))
    if rng.random() < 0.5:
        delta.evidence_updates[int(rng.integers(fg.num_vars))] = bool(
            rng.integers(2)
        )
    if rng.random() < 0.4:
        delta.changed_weight_values[int(rng.integers(len(fg.weights)))] = float(
            rng.normal()
        )
    return delta


class TestComposition:
    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_composed_equals_sequential(self, seed):
        """base ⊕ compose(d1, d2) == (base ⊕ d1) ⊕ d2."""
        base = random_pairwise_graph(5, density=0.4, seed=seed)
        d1 = random_delta(base, seed * 2 + 1)
        mid = d1.apply(base)
        d2 = random_delta(mid, seed * 2 + 2)
        final_sequential = d2.apply(mid)
        composed = compose_deltas(base, d1, d2)
        final_composed = composed.apply(base)

        assert final_composed.num_vars == final_sequential.num_vars
        assert final_composed.evidence == final_sequential.evidence
        rng = np.random.default_rng(seed)
        for _ in range(10):
            world = rng.random(final_sequential.num_vars) < 0.5
            assert final_composed.energy(world) == pytest.approx(
                final_sequential.energy(world), abs=1e-9
            )

    def test_composed_classification_is_union(self):
        base = chain_ising_graph(3)
        d1 = FactorGraphDelta(evidence_updates={0: True})
        d2 = FactorGraphDelta(num_new_vars=1)
        composed = compose_deltas(base, d1, d2)
        assert composed.changes_evidence and composed.changes_structure
