"""A relation with derivation counts and lazy hash indexes.

Derived relations maintained by the counting algorithm (DRed's delta
relations, §3.1) need, for each tuple ``t``, the number of derivations
``t.count``; base relations simply have count 1 per inserted tuple.  A
tuple is *visible* while its count is positive.

Point lookups during join evaluation use hash indexes built lazily per
bound-column combination and maintained on every insert/delete.
"""

from __future__ import annotations


class Relation:
    """A named multiset of fixed-arity tuples with derivation counts."""

    def __init__(self, name: str, columns) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.arity = len(self.columns)
        self._counts: dict = {}
        self._indexes: dict = {}  # positions tuple -> {key tuple: set of rows}
        self._rows_cache: tuple | None = None  # invalidated on visibility change
        self._mirrors: list = []  # transition logs of columnar mirrors
        self.index_builds = 0  # lazy index constructions (not maintenance)
        self.index_probes = 0  # lookups answered from an index

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _check(self, row) -> tuple:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"{self.name}: expected arity {self.arity}, got {len(row)}: {row!r}"
            )
        return row

    def insert(self, row, count: int = 1) -> bool:
        """Add ``count`` derivations of ``row``.

        Returns True when the tuple becomes newly visible.
        """
        if count <= 0:
            raise ValueError("insert count must be positive")
        row = self._check(row)
        old = self._counts.get(row, 0)
        self._counts[row] = old + count
        if old == 0:
            self._index_add(row)
            self._rows_cache = None
            self._notify(row, 1)
            return True
        return False

    def delete(self, row, count: int = 1) -> bool:
        """Remove ``count`` derivations of ``row``.

        Returns True when the tuple stops being visible.  Deleting more
        derivations than exist raises (the counting algorithm never does).
        """
        if count <= 0:
            raise ValueError("delete count must be positive")
        row = self._check(row)
        old = self._counts.get(row, 0)
        if old < count:
            raise KeyError(
                f"{self.name}: cannot delete {count} derivations of {row!r} "
                f"(has {old})"
            )
        new = old - count
        if new == 0:
            del self._counts[row]
            self._index_remove(row)
            self._rows_cache = None
            self._notify(row, -1)
            return True
        self._counts[row] = new
        return False

    def bulk_insert_counts(self, mapping: dict) -> None:
        """Insert a ``{row: positive count}`` map in one pass.

        Semantically ``insert(row, count)`` per entry (rows must already
        be tuples of the right arity); used by the columnar grounding
        engine to fold whole aggregated head batches into the relation
        without per-row call overhead.
        """
        counts = self._counts
        arity = self.arity
        # Validate everything before mutating anything: a mid-map raise
        # must not leave earlier rows inserted without index/mirror
        # maintenance.
        for row, count in mapping.items():
            if count <= 0:
                raise ValueError("insert count must be positive")
            if len(row) != arity:
                raise ValueError(
                    f"{self.name}: expected arity {arity}, got "
                    f"{len(row)}: {row!r}"
                )
        appeared = []
        for row, count in mapping.items():
            old = counts.get(row, 0)
            counts[row] = old + count
            if old == 0:
                appeared.append(row)
        if appeared:
            self._rows_cache = None
            for row in appeared:
                self._index_add(row)
                self._notify(row, 1)

    def apply_delta(self, delta: dict) -> tuple:
        """Apply a ``{row: signed count}`` delta.

        Returns ``(appeared, disappeared)`` — lists of tuples that became
        visible / stopped being visible.
        """
        appeared, disappeared = [], []
        for row, change in delta.items():
            if change > 0:
                if self.insert(row, change):
                    appeared.append(tuple(row))
            elif change < 0:
                if self.delete(row, -change):
                    disappeared.append(tuple(row))
        return appeared, disappeared

    def clear(self) -> None:
        self._counts.clear()
        self._indexes.clear()
        self._rows_cache = None
        self._notify(None, 0)  # reset sentinel: mirrors reload from scratch

    def attach_mirror(self, log: list) -> None:
        """Register a visibility-transition log (a columnar mirror's).

        Every subsequent visibility transition appends ``(row, ±1)`` to
        ``log``; :meth:`clear` appends the ``(None, 0)`` reset sentinel.
        Mirrors drain their log on sync, so maintenance is O(|Δ|).
        """
        self._mirrors.append(log)

    def _notify(self, row, sign: int) -> None:
        for log in self._mirrors:
            log.append((row, sign))
            # An orphaned mirror (attached once, never synced again)
            # must not accumulate the relation's whole mutation history:
            # past a multiple of the relation size, collapse the log to
            # the reset sentinel — the mirror reloads in full on its
            # next sync, which costs no more than replaying the log.
            if len(log) > 4 * len(self._counts) + 256:
                log[:] = [(None, 0)]

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, row) -> bool:
        return tuple(row) in self._counts

    def __iter__(self):
        return iter(self._counts)

    def count(self, row) -> int:
        return self._counts.get(tuple(row), 0)

    def rows(self) -> tuple:
        """All visible rows, as a tuple cached until the next
        visibility transition (so repeated full scans are free)."""
        cached = self._rows_cache
        if cached is None:
            cached = self._rows_cache = tuple(self._counts)
        return cached

    def counts(self) -> dict:
        """A copy of the full ``{row: count}`` map."""
        return dict(self._counts)

    def lookup(self, positions, values) -> tuple:
        """Rows whose ``positions`` columns equal ``values``.

        Builds (and thereafter maintains) a hash index on ``positions``.
        An empty ``positions`` returns all rows.  Always returns a tuple
        (matching :meth:`rows`); treat it as an unordered snapshot.
        """
        positions = tuple(positions)
        if not positions:
            return self.rows()
        index = self._indexes.get(positions)
        if index is None:
            self.index_builds += 1
            index = {}
            for row in self._counts:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
            self._indexes[positions] = index
        self.index_probes += 1
        bucket = index.get(tuple(values))
        return tuple(bucket) if bucket else ()

    def index_stats(self) -> dict:
        """Lazy-index counters: builds are full constructions (deltas
        maintain existing indexes in place and must not bump this),
        probes are index-served lookups."""
        return {
            "indexes": len(self._indexes),
            "builds": self.index_builds,
            "probes": self.index_probes,
        }

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def _index_add(self, row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, set()).add(row)

    def _index_remove(self, row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]

    def __repr__(self) -> str:
        return f"Relation({self.name}{self.columns}, rows={len(self)})"
